// Shared scans: the per-table coordinator that coalesces concurrently
// admitted Aggregate/GroupBy plans into cooperative fused passes. N
// enrolled queries cost one chunk decode plus N folds instead of N full
// scans (DimmWitted's sharing tradeoff applied to the scan cursor): the
// table is walked in segments as a circular scan, a driver goroutine
// runs one colstore.ScanRange per segment with every enrolled query's
// state attached, late arrivals attach at the current cursor and
// complete on wraparound (Crescando-style), and identical plans
// piggyback on one enrollment outright. Enrollment is adaptive — the
// server scores modeled sharing against the query's own zone-pruned
// scan (adapt.ScoreSharedScan) and bypasses when pruning already wins,
// e.g. highly selective zone-resolved predicates.
package queryd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartarrays/internal/adapt"
	"smartarrays/internal/bitpack"
	"smartarrays/internal/colstore"
	"smartarrays/internal/obs"
	"smartarrays/internal/queryd/plan"
	"smartarrays/internal/rts"
)

// SharedBatchHistogram is the recorder histogram observing how many
// queries each cooperative segment pass served — distinct scan states
// plus the coalesced twins riding them.
const SharedBatchHistogram = "queryd.shared_batch"

// SharedScanStats is the /stats wire form of the coordinator counters.
type SharedScanStats struct {
	// Enrolled counts queries that rode a cooperative pass (leaders
	// included); Coalesced counts queries answered by piggybacking on an
	// identical enrolled plan; Bypassed counts eligible queries the
	// adaptive score sent to an independent scan instead.
	Enrolled  uint64 `json:"enrolled"`
	Coalesced uint64 `json:"coalesced"`
	Bypassed  uint64 `json:"bypassed"`
	// SegmentPasses counts cooperative segment passes executed;
	// SharedBatches counts the passes that served at least two queries
	// (coalesced twins included — a pass folding one state for three
	// identical queries is sharing) — the "did sharing actually happen"
	// signal the load gate asserts.
	SegmentPasses uint64 `json:"segment_passes"`
	SharedBatches uint64 `json:"shared_batches"`
	// MaxBatch is the largest batch any single pass served.
	MaxBatch uint64 `json:"max_batch"`
}

// sharedExec owns one tableScanner per served table plus the monotone
// counters. Tables are immutable and never removed from the catalog, so
// the scanner map only grows (one entry per dataset).
type sharedExec struct {
	rec *obs.Recorder

	mu       sync.Mutex
	scanners map[*colstore.Table]*tableScanner

	enrolled      atomic.Uint64
	coalesced     atomic.Uint64
	bypassed      atomic.Uint64
	segmentPasses atomic.Uint64
	sharedBatches atomic.Uint64
	maxBatch      atomic.Uint64
}

func newSharedExec(rec *obs.Recorder) *sharedExec {
	return &sharedExec{rec: rec, scanners: map[*colstore.Table]*tableScanner{}}
}

// Stats snapshots the coordinator counters.
func (se *sharedExec) Stats() SharedScanStats {
	return SharedScanStats{
		Enrolled:      se.enrolled.Load(),
		Coalesced:     se.coalesced.Load(),
		Bypassed:      se.bypassed.Load(),
		SegmentPasses: se.segmentPasses.Load(),
		SharedBatches: se.sharedBatches.Load(),
		MaxBatch:      se.maxBatch.Load(),
	}
}

// scanner returns (creating on first use) the table's coordinator.
func (se *sharedExec) scanner(tbl *colstore.Table, rt *rts.Runtime) *tableScanner {
	se.mu.Lock()
	defer se.mu.Unlock()
	sc, ok := se.scanners[tbl]
	if !ok {
		sc = &tableScanner{se: se, tbl: tbl, rt: rt}
		se.scanners[tbl] = sc
	}
	return sc
}

// notePass records one executed segment pass of the given batch size.
func (se *sharedExec) notePass(batch int) {
	se.segmentPasses.Add(1)
	if batch >= 2 {
		se.sharedBatches.Add(1)
	}
	for {
		cur := se.maxBatch.Load()
		if uint64(batch) <= cur || se.maxBatch.CompareAndSwap(cur, uint64(batch)) {
			break
		}
	}
	if se.rec != nil {
		se.rec.Histogram(SharedBatchHistogram).Observe(uint64(batch))
	}
}

// sharedQuery is one enrollment: its scan state, wraparound countdown,
// and completion channel. Coalesced twins carry only key/done/res.
type sharedQuery struct {
	key       string
	st        *colstore.ScanState
	prio      int
	remaining int
	// dups are identical plans piggybacking on this enrollment; appended
	// only under the scanner lock while the query is enrolled, frozen
	// once the driver retires it, so finalization reads it lock-free.
	dups []*sharedQuery
	done chan struct{}
	res  colstore.ScanResult
}

// tableScanner is the per-table circular-scan coordinator. The first
// enrollment starts a driver goroutine that runs one cooperative
// ScanRange per segment until no queries remain; enrolling handlers
// just wait on their done channel. The segment count is pinned while
// the driver runs (a query's wraparound countdown must match the
// boundaries every pass uses) and re-reads the config when idle.
type tableScanner struct {
	se  *sharedExec
	tbl *colstore.Table
	rt  *rts.Runtime

	mu       sync.Mutex
	running  bool
	cursor   int
	segments int
	active   []*sharedQuery
	pending  []*sharedQuery

	// wrapNS is an EWMA of the full-wraparound time (segment pass time ×
	// segment count), maintained by the driver. It sizes the arrival
	// window: queries arriving within one wraparound of each other share
	// passes, so that is the horizon over which arrivals predict batches.
	wrapNS atomic.Int64
	// indepNS is an EWMA of independent predicated-scan latency at this
	// table, fed by the bypass path. It seeds the window before any
	// cooperative pass has run — a wraparound costs about one independent
	// scan, and without the seed a slow table never sees two arrivals
	// inside the bootstrap floor, so nothing would ever enroll.
	indepNS atomic.Int64
	// arrivalSeq counts eligible decisions ever noted; the driver diffs it
	// across passes to tell flowing multi-client load (pace the scan so
	// arrivals batch) from a lone sequential client (never pace — its next
	// query only arrives after this one returns).
	arrivalSeq atomic.Uint64
	// gapNS is the windowed mean inter-arrival gap — the pause that lets
	// one more query join the current pass.
	gapNS atomic.Int64
	// arrivals holds recent eligible-decision timestamps (newest last),
	// pruned to the window on every note.
	arrivalMu sync.Mutex
	arrivals  []time.Time
}

// Arrival-window clamps: below the floor a window can't observe
// concurrency the OS serializes (few-core hosts interleave handlers, so
// near-simultaneous requests land milliseconds apart); above the cap a
// slow table would treat long-gone queries as batch mates.
const (
	arrivalWindowMin = 2 * time.Millisecond
	arrivalWindowMax = 200 * time.Millisecond
)

// noteArrival records one eligible enrollment decision and returns the
// number of such decisions (this one included) inside the current
// arrival window. This is the forward-looking half of the batch
// estimate: the admission census (in-flight + queued) only sees a
// standing backlog, which never forms when the host serializes request
// handling — yet queries arriving within one wraparound of each other
// would still ride the same circular scan.
func (sc *tableScanner) noteArrival(now time.Time) int {
	window := sc.window()
	cut := now.Add(-window)
	sc.arrivalMu.Lock()
	defer sc.arrivalMu.Unlock()
	keep := 0
	for _, t := range sc.arrivals {
		if t.After(cut) {
			break
		}
		keep++
	}
	sc.arrivals = append(sc.arrivals[keep:], now)
	// Cap the ring: past a few thousand the estimate can't change any
	// enrollment decision, so dropping the oldest only bounds memory.
	if len(sc.arrivals) > 4096 {
		sc.arrivals = sc.arrivals[len(sc.arrivals)-4096:]
	}
	sc.arrivalSeq.Add(1)
	sc.gapNS.Store(int64(window) / int64(len(sc.arrivals)))
	return len(sc.arrivals)
}

// window is the horizon over which arrivals count as batch mates: the
// measured wraparound (independent-scan latency until one exists),
// clamped so a tiny table still observes serialized concurrency and a
// huge one doesn't resurrect long-gone queries.
func (sc *tableScanner) window() time.Duration {
	w := time.Duration(sc.wrapNS.Load())
	if w == 0 {
		w = time.Duration(sc.indepNS.Load())
	}
	if w < arrivalWindowMin {
		return arrivalWindowMin
	}
	if w > arrivalWindowMax {
		return arrivalWindowMax
	}
	return w
}

// noteIndependent folds one bypassed predicated scan's latency into the
// window seed.
func (sc *tableScanner) noteIndependent(d time.Duration) {
	n := int64(d)
	if n <= 0 {
		return
	}
	if old := sc.indepNS.Load(); old > 0 {
		n = (3*old + n) / 4
	}
	sc.indepNS.Store(n)
}

// recentArrivals counts the enrollable decisions inside the current
// window without noting a new one — the driver's view of how many
// queries are concurrently flowing at this table.
func (sc *tableScanner) recentArrivals(now time.Time) int {
	cut := now.Add(-sc.window())
	sc.arrivalMu.Lock()
	defer sc.arrivalMu.Unlock()
	n := 0
	for i := len(sc.arrivals) - 1; i >= 0; i-- {
		if !sc.arrivals[i].After(cut) {
			break
		}
		n++
	}
	return n
}

// population is the current enrollment (active + pending) — one input
// to the server's batch-size estimate.
func (sc *tableScanner) population() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.active) + len(sc.pending)
}

// submit enrolls one query and blocks until the circular scan has
// covered the full table for it. Identical enrolled plans coalesce:
// the data is immutable, so a twin's answer is this query's answer.
// When prof is non-nil the enrollment's per-column chunk accounting is
// attached to the scan state (folded by the driver before completion)
// and the coordinator outcome — mode, segments ridden, wraparound
// latency — is noted on the profile.
func (sc *tableScanner) submit(q colstore.ScanQuery, key string, prio, segments int, prof *obs.QueryProfile) (colstore.ScanResult, error) {
	submitStart := time.Now()
	sc.mu.Lock()
	if twin := sc.findTwin(key); twin != nil {
		me := &sharedQuery{key: key, done: make(chan struct{})}
		twin.dups = append(twin.dups, me)
		sc.mu.Unlock()
		sc.se.coalesced.Add(1)
		<-me.done
		// A coalesced twin rode another query's state: no column detail
		// to report, just the outcome and the wait.
		prof.NoteShared(obs.SharedCoalesced, 0, time.Since(submitStart))
		return me.res, nil
	}
	st, err := sc.tbl.NewScanState(q)
	if err != nil {
		sc.mu.Unlock()
		return colstore.ScanResult{}, err
	}
	st.EnableProfile(prof, len(sc.rt.Workers()))
	me := &sharedQuery{key: key, st: st, prio: prio, done: make(chan struct{})}
	sc.pending = append(sc.pending, me)
	if !sc.running {
		sc.running = true
		sc.cursor = 0
		sc.segments = segments
		if r := sc.tbl.Rows(); uint64(sc.segments) > r {
			sc.segments = int(r)
		}
		go sc.drive()
	}
	// The driver pins the segment count while running; read the pinned
	// value so the profile reports the wraparound actually ridden.
	segs := sc.segments
	sc.mu.Unlock()
	sc.se.enrolled.Add(1)
	<-me.done
	prof.NoteShared(obs.SharedEnrolled, segs, time.Since(submitStart))
	return me.res, nil
}

// findTwin returns an enrolled query with the same plan key, if any.
// Only pending/active queries qualify — a retired query's dups list is
// frozen. Linear scan: enrollments number tens, not thousands.
func (sc *tableScanner) findTwin(key string) *sharedQuery {
	for _, q := range sc.pending {
		if q.key == key {
			return q
		}
	}
	for _, q := range sc.active {
		if q.key == key {
			return q
		}
	}
	return nil
}

// Pacing bounds: a flowing-load pause never exceeds the cap, so a full
// wraparound stretches by at most segments × cap; past the batch bound
// the walk is already amortized and stretching only adds latency.
const (
	sharedPaceCap      = 2 * time.Millisecond
	sharedPaceMaxBatch = 64
)

// segBound is boundary i of n equal-ish segments over rows, rounded to
// the 64-row chunk grid so a cooperative pass never splits a chunk
// across segments. The per-query chunk accounting depends on this:
// unaligned boundaries make adjacent segments each scan the shared
// partial chunk, breaking scanned+pruned == chunks for enrolled
// queries. Rounding may leave tiny-table segments empty (lo == hi);
// ScanRange no-ops on those and the query still retires after its
// wraparound.
func segBound(i int, rows uint64, n int) uint64 {
	if i >= n {
		return rows
	}
	b := uint64(i) * rows / uint64(n)
	b = (b + bitpack.ChunkSize/2) / bitpack.ChunkSize * bitpack.ChunkSize
	if b > rows {
		b = rows
	}
	return b
}

// drive is the circular scan: attach pending queries at the cursor, run
// one cooperative segment pass at the wave's top priority, retire
// queries that wrapped around, repeat until empty. Runs on its own
// goroutine so no handler is held captive driving other queries'
// segments; it exits before the last enrolled handler returns, so the
// server's close ordering (listener, then scheduler) still holds.
//
// When the table is small the wraparound outruns the inter-arrival gap
// and every query would ride solo — no amortization at all. So the
// driver paces itself: any eligible decision noted while a pass was
// running is genuine concurrency (a lone sequential client cannot
// produce one — its next query only arrives after the current one
// returns and the driver has drained), and the driver lingers one
// windowed inter-arrival gap before the next pass so the flow batches
// onto the current scan instead of each arrival getting a private
// wraparound.
func (sc *tableScanner) drive() {
	rows := sc.tbl.Rows()
	lastSeq := sc.arrivalSeq.Load()
	pace := time.Duration(0)
	// Bootstrap the flow deadline from the arrival history: on a fast
	// table the driver drains and restarts in about a wraparound, so a
	// fresh driver would otherwise finish before seeing a single new
	// decision and never pace. Starting with company in the window (the
	// enrolling query plus at least one other) IS flow.
	var flowUntil time.Time
	if now := time.Now(); sc.recentArrivals(now) >= 2 {
		flowUntil = now.Add(sc.window())
	}
	for {
		passStart := time.Now()
		if pace > 0 {
			time.Sleep(pace)
		}
		sc.mu.Lock()
		for _, q := range sc.pending {
			q.remaining = sc.segments
			sc.active = append(sc.active, q)
		}
		sc.pending = sc.pending[:0]
		if len(sc.active) == 0 {
			sc.running = false
			sc.mu.Unlock()
			return
		}
		batch := append([]*sharedQuery(nil), sc.active...)
		// served is the pass's true batch size: states plus the coalesced
		// twins riding them (dups only grow under this lock).
		served := 0
		for _, q := range batch {
			served += 1 + len(q.dups)
		}
		seg, segments := sc.cursor, sc.segments
		sc.mu.Unlock()

		// Flow persists for one arrival window after the last observed
		// decision — a single pass is far too short a sample at any
		// arrival rate worth batching for. The pause is proportional to
		// the deficit between the flowing demand (arrivals in the window)
		// and what this pass already serves: once the batch has absorbed
		// the flow, or the flow stops, pacing stops with it — a closed
		// loop whose equilibrium batch is the concurrent eligible demand.
		now := time.Now()
		if seqNow := sc.arrivalSeq.Load(); seqNow != lastSeq {
			lastSeq = seqNow
			flowUntil = now.Add(sc.window())
		}
		pace = 0
		if now.Before(flowUntil) && served < sharedPaceMaxBatch {
			if deficit := sc.recentArrivals(now) - served; deficit > 0 {
				pace = time.Duration(sc.gapNS.Load()) * time.Duration(deficit)
				if pace > sharedPaceCap {
					pace = sharedPaceCap
				}
			}
		}

		lo := segBound(seg, rows, segments)
		hi := segBound(seg+1, rows, segments)
		states := make([]*colstore.ScanState, len(batch))
		prio := batch[0].prio
		for i, q := range batch {
			states[i] = q.st
			if q.prio > prio {
				prio = q.prio
			}
		}
		// The segment's morsels dispatch through the scheduler like any
		// other loop, so sharing composes with priorities and preemption.
		sc.tbl.WithRuntime(sc.rt.WithPriority(prio)).ScanRange(lo, hi, states)
		// Fold the observed pass — pacing pause included, since arrivals
		// during the pause ride this wraparound too — into the EWMA that
		// sizes the arrival window (3:1 old:new smooths scheduler jitter).
		if wrap := int64(time.Since(passStart)) * int64(segments); wrap > 0 {
			if old := sc.wrapNS.Load(); old > 0 {
				wrap = (3*old + wrap) / 4
			}
			sc.wrapNS.Store(wrap)
		}
		sc.se.notePass(served)

		var finished []*sharedQuery
		sc.mu.Lock()
		sc.cursor = (seg + 1) % segments
		keep := sc.active[:0]
		for _, q := range sc.active {
			q.remaining--
			if q.remaining <= 0 {
				finished = append(finished, q)
			} else {
				keep = append(keep, q)
			}
		}
		sc.active = keep
		sc.mu.Unlock()
		for _, q := range finished {
			// Fold the per-worker scan accounting into the query's profile
			// before completion: close(q.done) publishes it to the waiting
			// handler.
			q.st.FoldProfile()
			q.res = q.st.Result()
			for _, d := range q.dups {
				d.res = q.res
				close(d.done)
			}
			close(q.done)
		}
	}
}

// planScanQuery converts an eligible table plan into its scan form.
func planScanQuery(p *plan.Plan) colstore.ScanQuery {
	q := colstore.ScanQuery{Agg: p.Agg, Column: p.Column, Preds: p.Preds}
	if p.Op == plan.OpGroupBy {
		q.Key = p.Key
	}
	return q
}

// planKey is the coalescing identity: op, aggregate, columns, and the
// predicate set (order-canonicalized — AND commutes). Dataset identity
// comes from the per-table scanner, and staleness needs no guard: table
// data is immutable, and re-encoding preserves values.
func planKey(p *plan.Plan) string {
	preds := make([]string, len(p.Preds))
	for i, pr := range p.Preds {
		preds[i] = fmt.Sprintf("%s\x00%d\x00%d", pr.Column, pr.Op, pr.Value)
	}
	sort.Strings(preds)
	return fmt.Sprintf("%s|%d|%s|%s|%s", p.Op, p.Agg, p.Column, p.Key, strings.Join(preds, "\x01"))
}

// decideEnroll scores enrollment for a predicated table plan at the
// given batch estimate: the query's zone prune statistics feed the
// foldShare/resolvedShare the adaptive score compares against the
// amortized cooperative pass. Unpredicated plans always bypass — their
// independent fast paths (zone-root min/max, pure fused folds) leave no
// mask walk to share — as do plans whose columns fail to resolve (the
// independent path owns the error report).
func decideEnroll(tbl *colstore.Table, p *plan.Plan, est int) (adapt.SharedScanScore, bool) {
	if len(p.Preds) == 0 {
		return adapt.SharedScanScore{}, false
	}
	target, err := tbl.Column(p.Column)
	if err != nil {
		return adapt.SharedScanScore{}, false
	}
	foldShare, resolved := 1.0, 0.0
	for _, pr := range p.Preds {
		c, err := tbl.Column(pr.Column)
		if err != nil {
			return adapt.SharedScanScore{}, false
		}
		z := c.Array().ZoneIndex()
		if z == nil {
			continue
		}
		ps := z.PruneStatsFor(pr.Op.Cmp(), pr.Value)
		// Conjunction: the fold only visits chunks every predicate leaves
		// live; the walk skips whatever the best single predicate resolves.
		if fs := 1 - ps.NoneShare; fs < foldShare {
			foldShare = fs
		}
		if r := ps.NoneShare + ps.AllShare; r > resolved {
			resolved = r
		}
	}
	score := adapt.ScoreSharedScan(target.Array().EncodingStats(), foldShare, resolved, est)
	return score, score.Enroll
}
