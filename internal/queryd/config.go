// Control-plane configuration for the query service, following the
// control-plane/data-plane split: all mutable state — admission limits,
// quotas, and the dataset catalog — lives in one immutable snapshot
// behind an atomic pointer. The data plane loads the pointer once per
// request and never takes a lock; configuration changes build a fresh
// snapshot offline (including any new dataset materialization) and swap
// it in atomically.
package queryd

import (
	"fmt"
	"time"
)

// Config is the admission/quota configuration. The zero value is invalid;
// start from DefaultConfig.
type Config struct {
	// MaxInFlight bounds queries executing concurrently on the scheduler.
	MaxInFlight int `json:"max_in_flight"`
	// MaxQueue bounds queries waiting for an in-flight slot; arrivals
	// beyond it are shed immediately with 429.
	MaxQueue int `json:"max_queue"`
	// QueueTimeoutMS is the default time a query may wait in the admission
	// queue before being shed with 429 (queries can tighten it per-request
	// with deadline_ms, never extend it).
	QueueTimeoutMS int64 `json:"queue_timeout_ms"`
	// TenantMaxInFlight caps admitted-plus-queued queries per tenant
	// (0 = no per-tenant quota). Requests without a tenant share the ""
	// tenant.
	TenantMaxInFlight int `json:"tenant_max_in_flight"`
	// MaxPriority clamps the per-query priority range to
	// [-MaxPriority, MaxPriority] so one client cannot starve the pool by
	// claiming an arbitrarily high priority.
	MaxPriority int `json:"max_priority"`
	// CacheEntries bounds the result cache (0 = caching off, the
	// default). Cached queries are answered before admission control, so
	// a repeated-query mix gains throughput and sheds queue pressure at
	// once; entries are keyed on catalog version and column generations,
	// so swaps and re-encodes invalidate without a flush pass.
	CacheEntries int `json:"cache_entries"`
	// SharedScan enables the cooperative shared-scan coordinator (off by
	// default; saserve turns it on): concurrently admitted predicated
	// Aggregate/GroupBy plans over one table batch into circular-scan
	// passes that decode each chunk once for the whole batch. Enrollment
	// stays adaptive per query — see internal/adapt.ScoreSharedScan.
	SharedScan bool `json:"shared_scan"`
	// SharedScanSegments is the circular scan's segment count (0 = the
	// default, 8): late arrivals attach at the next segment boundary and
	// complete after a full wraparound, so more segments mean finer
	// attachment latency but more per-pass loop overhead.
	SharedScanSegments int `json:"shared_scan_segments"`
	// ProfileSample controls query profiling: 0 disables it, 1 profiles
	// every query, N profiles one in N. A profiled query carries a
	// QueryProfile through every layer (stage timings, shared-scan
	// outcome, per-column chunk accounting, morsel claims) and lands in
	// the slow-query log. "explain": true forces a profile regardless of
	// the rate. Per-tenant RED metrics are always recorded, unsampled.
	ProfileSample int `json:"profile_sample"`
	// SlowQueryMS is the slow-query-log threshold in milliseconds
	// (0 = the default, 250): profiled queries at or over it enter the
	// slow ring served at /debug/slowlog.
	SlowQueryMS int64 `json:"slow_query_ms"`
}

// DefaultConfig returns serving defaults sized for the load harness: a
// small in-flight bound (concurrency on the worker pool comes from batch
// multiplexing, not from admitting everything at once) and a queue a few
// times deeper.
func DefaultConfig() Config {
	return Config{
		MaxInFlight:       4,
		MaxQueue:          64,
		QueueTimeoutMS:    2000,
		TenantMaxInFlight: 0,
		MaxPriority:       100,
	}
}

// Validate rejects nonsensical configurations before they can be swapped
// in.
func (c Config) Validate() error {
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("queryd: max_in_flight must be positive, got %d", c.MaxInFlight)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("queryd: max_queue must be non-negative, got %d", c.MaxQueue)
	}
	if c.QueueTimeoutMS <= 0 {
		return fmt.Errorf("queryd: queue_timeout_ms must be positive, got %d", c.QueueTimeoutMS)
	}
	if c.TenantMaxInFlight < 0 {
		return fmt.Errorf("queryd: tenant_max_in_flight must be non-negative, got %d", c.TenantMaxInFlight)
	}
	if c.MaxPriority < 0 {
		return fmt.Errorf("queryd: max_priority must be non-negative, got %d", c.MaxPriority)
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("queryd: cache_entries must be non-negative, got %d", c.CacheEntries)
	}
	if c.SharedScanSegments < 0 || c.SharedScanSegments > maxSharedScanSegments {
		return fmt.Errorf("queryd: shared_scan_segments must be in [0, %d], got %d",
			maxSharedScanSegments, c.SharedScanSegments)
	}
	if c.ProfileSample < 0 {
		return fmt.Errorf("queryd: profile_sample must be non-negative, got %d", c.ProfileSample)
	}
	if c.SlowQueryMS < 0 {
		return fmt.Errorf("queryd: slow_query_ms must be non-negative, got %d", c.SlowQueryMS)
	}
	return nil
}

// defaultSlowQueryMS is the slow-query-log threshold when the config
// leaves it zero.
const defaultSlowQueryMS = 250

// slowQueryThreshold resolves the configured slow-query threshold.
func (c Config) slowQueryThreshold() time.Duration {
	ms := c.SlowQueryMS
	if ms == 0 {
		ms = defaultSlowQueryMS
	}
	return time.Duration(ms) * time.Millisecond
}

// defaultSharedScanSegments balances attachment latency (a late query
// waits at most one segment before scanning) against per-pass loop
// overhead; maxSharedScanSegments keeps a config from degenerating the
// scan into per-row passes.
const (
	defaultSharedScanSegments = 8
	maxSharedScanSegments     = 1024
)

// sharedSegments resolves the configured segment count.
func (c Config) sharedSegments() int {
	if c.SharedScanSegments <= 0 {
		return defaultSharedScanSegments
	}
	return c.SharedScanSegments
}

// queueTimeout resolves the admission deadline for a query that asked for
// deadlineMS (0 = none): the config default, tightened but never extended
// by the request.
func (c Config) queueTimeout(deadlineMS int64) time.Duration {
	d := time.Duration(c.QueueTimeoutMS) * time.Millisecond
	if deadlineMS > 0 {
		if rd := time.Duration(deadlineMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return d
}

// clampPriority folds a requested priority into the configured range.
func (c Config) clampPriority(p int) int {
	if p > c.MaxPriority {
		return c.MaxPriority
	}
	if p < -c.MaxPriority {
		return -c.MaxPriority
	}
	return p
}

// snapshot is the immutable state the data plane reads: the config plus
// the dataset catalog. A new snapshot shares unchanged datasets with its
// predecessor (they are immutable), so a config-only swap is cheap.
type snapshot struct {
	cfg      Config
	datasets map[string]*Dataset
	// version counts control-plane swaps (config or catalog). It is part
	// of every result-cache key, so a swap implicitly invalidates all
	// cached results without touching the cache.
	version uint64
}

// dataset resolves a dataset by name.
func (s *snapshot) dataset(name string) (*Dataset, error) {
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("queryd: unknown dataset %q", name)
	}
	return d, nil
}
