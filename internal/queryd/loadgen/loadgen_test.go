package loadgen

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/queryd"
	"smartarrays/internal/rts"
)

func TestPickerRespectsWeights(t *testing.T) {
	mix := []QuerySpec{
		{Name: "a", Weight: 9, Body: []byte(`{}`)},
		{Name: "b", Weight: 1, Body: []byte(`{}`)},
	}
	pk, err := newPicker(mix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[mix[pk.pick(rng)].Name]++
	}
	if counts["a"] < 8500 || counts["b"] < 500 {
		t.Fatalf("picks = %v, want ~9:1", counts)
	}
	if _, err := newPicker(nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := newPicker([]QuerySpec{{Name: "x", Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestDefaultMixShape(t *testing.T) {
	both := DefaultMix(queryd.Meta{Name: "d", Rows: 10, Vertices: 10})
	tableOnly := DefaultMix(queryd.Meta{Name: "d", Rows: 10})
	graphOnly := DefaultMix(queryd.Meta{Name: "d", Vertices: 10})
	if len(both) != len(tableOnly)+len(graphOnly) {
		t.Fatalf("mix sizes: both %d, table %d, graph %d", len(both), len(tableOnly), len(graphOnly))
	}
	if len(tableOnly) == 0 || len(graphOnly) == 0 {
		t.Fatal("empty sub-mixes")
	}
	for _, s := range both {
		if s.Weight <= 0 || len(s.Body) == 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
}

// TestRunAgainstLiveServer runs the full generator (closed loop, then a
// short open-loop burst) and the spot check against a real server.
func TestRunAgainstLiveServer(t *testing.T) {
	rec := obs.NewRecorder(0)
	rt := rts.New(machine.UMA(4))
	rt.SetRecorder(rec)
	srv, err := queryd.NewServer(rt, queryd.DefaultConfig(), []queryd.DatasetSpec{
		{Name: "demo", Rows: 10000, Vertices: 1000, Seed: 3},
	}, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if err := SpotCheck(addr); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Options{Addr: addr, Duration: 400 * time.Millisecond, Concurrency: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.QPS <= 0 {
		t.Fatalf("closed loop served nothing: %+v", rep)
	}
	if rep.Errors5xx != 0 || rep.Transport != 0 {
		t.Fatalf("closed loop errors: %+v", rep)
	}
	if rep.P99MS < rep.P50MS || rep.P50MS <= 0 {
		t.Fatalf("quantiles inverted: %+v", rep)
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}

	open, err := Run(Options{Addr: addr, Duration: 300 * time.Millisecond, Rate: 200, Concurrency: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if open.Sent == 0 {
		t.Fatalf("open loop sent nothing: %+v", open)
	}

	report := t.TempDir() + "/report.json"
	if err := rep.WriteFile(report); err != nil {
		t.Fatal(err)
	}

	// Per-op latency summaries: every served op gets a quantile row whose
	// counts sum to OK.
	var perOpTotal uint64
	for name, l := range rep.PerOp {
		if l.Count == 0 || l.P99MS < l.P50MS {
			t.Fatalf("per-op %s: bad summary %+v", name, l)
		}
		perOpTotal += l.Count
	}
	if perOpTotal != rep.OK {
		t.Fatalf("per-op counts sum to %d, OK %d", perOpTotal, rep.OK)
	}

	// AggOnly restricts the mix to table scans.
	aggRep, err := Run(Options{Addr: addr, Duration: 200 * time.Millisecond, Concurrency: 2, AggOnly: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for name := range aggRep.PerOp {
		switch name {
		case "agg-sum", "agg-count", "agg-max", "groupby":
		default:
			t.Fatalf("AggOnly run served non-table op %q", name)
		}
	}
}

func TestTableOnlyFiltersMix(t *testing.T) {
	mix := DefaultMix(queryd.Meta{Name: "d", Rows: 10, Vertices: 10})
	filtered := TableOnly(mix)
	if len(filtered) == 0 || len(filtered) >= len(mix) {
		t.Fatalf("TableOnly kept %d of %d specs", len(filtered), len(mix))
	}
	for _, s := range filtered {
		var body struct {
			Op string `json:"op"`
		}
		if err := json.Unmarshal(s.Body, &body); err != nil {
			t.Fatal(err)
		}
		if body.Op != "aggregate" && body.Op != "groupby" {
			t.Fatalf("non-table op %q survived the filter", body.Op)
		}
	}
}

// TestStreamSeedsDecorrelated asserts derived per-client streams are
// distinct (no two clients replay each other) yet reproducible (the same
// seed and stream always derive the same source).
func TestStreamSeedsDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for c := uint64(0); c < 256; c++ {
		s := streamSeed(42, c)
		if seen[s] {
			t.Fatalf("stream %d collides", c)
		}
		seen[s] = true
		if s != streamSeed(42, c) {
			t.Fatal("streamSeed not deterministic")
		}
	}
	if streamSeed(1, 0) == streamSeed(2, 0) {
		t.Fatal("different seeds derive the same stream")
	}

	// The derived streams must yield distinct pick sequences even for
	// adjacent client indexes — the correlation the raw +c+1 seeding had.
	mix := []QuerySpec{
		{Name: "a", Weight: 1, Body: []byte(`{}`)},
		{Name: "b", Weight: 1, Body: []byte(`{}`)},
	}
	pk, err := newPicker(mix)
	if err != nil {
		t.Fatal(err)
	}
	seq := func(stream uint64) string {
		rng := rand.New(rand.NewSource(streamSeed(7, stream)))
		var s []byte
		for i := 0; i < 64; i++ {
			s = append(s, mix[pk.pick(rng)].Name[0])
		}
		return string(s)
	}
	if seq(2) == seq(3) {
		t.Fatal("adjacent client streams replay the same pick sequence")
	}
	if seq(2) != seq(2) {
		t.Fatal("pick sequence not reproducible for a fixed seed")
	}
}
