package loadgen

import (
	"math/rand"
	"testing"
	"time"

	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/queryd"
	"smartarrays/internal/rts"
)

func TestPickerRespectsWeights(t *testing.T) {
	mix := []QuerySpec{
		{Name: "a", Weight: 9, Body: []byte(`{}`)},
		{Name: "b", Weight: 1, Body: []byte(`{}`)},
	}
	pk, err := newPicker(mix)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pk.pick(rng).Name]++
	}
	if counts["a"] < 8500 || counts["b"] < 500 {
		t.Fatalf("picks = %v, want ~9:1", counts)
	}
	if _, err := newPicker(nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := newPicker([]QuerySpec{{Name: "x", Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestDefaultMixShape(t *testing.T) {
	both := DefaultMix(queryd.Meta{Name: "d", Rows: 10, Vertices: 10})
	tableOnly := DefaultMix(queryd.Meta{Name: "d", Rows: 10})
	graphOnly := DefaultMix(queryd.Meta{Name: "d", Vertices: 10})
	if len(both) != len(tableOnly)+len(graphOnly) {
		t.Fatalf("mix sizes: both %d, table %d, graph %d", len(both), len(tableOnly), len(graphOnly))
	}
	if len(tableOnly) == 0 || len(graphOnly) == 0 {
		t.Fatal("empty sub-mixes")
	}
	for _, s := range both {
		if s.Weight <= 0 || len(s.Body) == 0 {
			t.Fatalf("bad spec %+v", s)
		}
	}
}

// TestRunAgainstLiveServer runs the full generator (closed loop, then a
// short open-loop burst) and the spot check against a real server.
func TestRunAgainstLiveServer(t *testing.T) {
	rec := obs.NewRecorder(0)
	rt := rts.New(machine.UMA(4))
	rt.SetRecorder(rec)
	srv, err := queryd.NewServer(rt, queryd.DefaultConfig(), []queryd.DatasetSpec{
		{Name: "demo", Rows: 10000, Vertices: 1000, Seed: 3},
	}, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	if err := SpotCheck(addr); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Options{Addr: addr, Duration: 400 * time.Millisecond, Concurrency: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.QPS <= 0 {
		t.Fatalf("closed loop served nothing: %+v", rep)
	}
	if rep.Errors5xx != 0 || rep.Transport != 0 {
		t.Fatalf("closed loop errors: %+v", rep)
	}
	if rep.P99MS < rep.P50MS || rep.P50MS <= 0 {
		t.Fatalf("quantiles inverted: %+v", rep)
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}

	open, err := Run(Options{Addr: addr, Duration: 300 * time.Millisecond, Rate: 200, Concurrency: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if open.Sent == 0 {
		t.Fatalf("open loop sent nothing: %+v", open)
	}

	report := t.TempDir() + "/report.json"
	if err := rep.WriteFile(report); err != nil {
		t.Fatal(err)
	}
}
