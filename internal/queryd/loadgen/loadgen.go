// Package loadgen drives a queryd server with a mixed query workload and
// reports throughput and latency percentiles — the serving-path
// counterpart of the modeled-figure benchmarks, and the thing the
// load-smoke CI gate runs.
//
// Two arrival models:
//
//   - Open loop (Rate > 0): arrivals follow a Poisson process at Rate
//     queries/sec, independent of completions — the honest overload
//     model, where a slow server accumulates outstanding requests
//     instead of silently slowing the generator down. Concurrency caps
//     the outstanding requests; arrivals past the cap are counted as
//     dropped, never silently delayed.
//   - Closed loop (Rate == 0): Concurrency workers issue queries
//     back-to-back — the classic "N concurrent clients" shape the
//     EXPERIMENTS table uses.
//
// Latencies land in an obs.Histogram (the same log2-bucketed lock-free
// histogram the server uses), so client- and server-side percentiles are
// directly comparable.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartarrays/internal/obs"
	"smartarrays/internal/queryd"
)

// QuerySpec is one weighted entry of the workload mix.
type QuerySpec struct {
	// Name labels the spec in the report ("agg-sum", "pagerank"...).
	Name string `json:"name"`
	// Weight is the relative pick frequency.
	Weight int `json:"weight"`
	// Body is the /query JSON payload.
	Body json.RawMessage `json:"body"`
}

// Options configure one load run.
type Options struct {
	// Addr is the server's host:port.
	Addr string
	// Duration is how long to generate load.
	Duration time.Duration
	// Rate selects open-loop Poisson arrivals per second; 0 selects
	// closed-loop.
	Rate float64
	// Concurrency is the closed-loop worker count, or the open-loop
	// outstanding-request cap.
	Concurrency int
	// Mix is the weighted workload; empty uses DefaultMix against the
	// server's first dataset.
	Mix []QuerySpec
	// AggOnly restricts the mix to table scans (aggregate/groupby) — the
	// shared-scan phases use it so graph kernels don't dilute the signal.
	AggOnly bool
	// Tenants spreads the workload over N synthetic tenant identities
	// (tenant-0 .. tenant-N-1) injected into each request body, so the
	// server accumulates per-tenant RED series; 0 or 1 sends untagged
	// requests. Bodies are pre-built per (spec, tenant) at setup, so the
	// hot path only indexes.
	Tenants int
	// Seed makes runs reproducible: every client RNG (closed-loop plan
	// pickers, the open-loop arrival and pick generators) is derived from
	// it through decorrelated splitmix64 streams, so the same seed replays
	// the same pick sequences regardless of scheduling.
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
}

// Report is the machine-readable result (written as JSON by saload and
// asserted on by the CI gate).
type Report struct {
	Addr        string  `json:"addr"`
	Mode        string  `json:"mode"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target,omitempty"`

	Sent      uint64 `json:"sent"`
	OK        uint64 `json:"ok"`
	Rejected  uint64 `json:"rejected_429"`
	Other4xx  uint64 `json:"other_4xx"`
	Errors5xx uint64 `json:"errors_5xx"`
	Transport uint64 `json:"transport_errors"`
	Dropped   uint64 `json:"dropped_arrivals"`

	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxInFlight int     `json:"max_in_flight_observed"`

	// Server-side result-cache deltas over the run (zero when the server
	// runs with caching off or /stats is unreachable).
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// Server-side shared-scan deltas over the run (zero when the server
	// runs with sharing off or /stats is unreachable).
	SharedEnrolled  uint64 `json:"shared_enrolled"`
	SharedCoalesced uint64 `json:"shared_coalesced"`
	SharedBypassed  uint64 `json:"shared_bypassed"`
	SharedBatches   uint64 `json:"shared_batches"`

	// PerOp carries one latency summary per plan type, so a shared-scan
	// win on aggregates isn't masked by graph kernels in a mixed run.
	PerOp map[string]OpLatency `json:"per_op"`

	// PerTenant carries one client-side latency/throughput summary per
	// synthetic tenant (present only when Options.Tenants > 1).
	PerTenant map[string]TenantLatency `json:"per_tenant,omitempty"`

	// SlowlogObserved/SlowlogSlow are the server slow-query-log deltas
	// over the run — profiles published and profiles over the slow
	// threshold (zero when profiling is off or /debug/slowlog is
	// unreachable).
	SlowlogObserved uint64 `json:"slowlog_observed"`
	SlowlogSlow     uint64 `json:"slowlog_slow"`
	// TenantSeries counts the per-tenant × per-op RED series the server
	// holds after the run (from /stats).
	TenantSeries int `json:"tenant_series"`
}

// TenantLatency is one synthetic tenant's client-side summary.
type TenantLatency struct {
	Count uint64  `json:"count"`
	QPS   float64 `json:"qps"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// OpLatency is one plan type's served-query latency summary.
type OpLatency struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders the human-readable one-screen result.
func (r *Report) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "loadgen: %s for %.1fs against %s\n", r.Mode, r.DurationSec, r.Addr)
	fmt.Fprintf(&b, "  sent %d  ok %d  429 %d  4xx %d  5xx %d  transport %d  dropped %d\n",
		r.Sent, r.OK, r.Rejected, r.Other4xx, r.Errors5xx, r.Transport, r.Dropped)
	fmt.Fprintf(&b, "  %.1f queries/sec   p50 %.2f ms   p95 %.2f ms   p99 %.2f ms   max in-flight %d\n",
		r.QPS, r.P50MS, r.P95MS, r.P99MS, r.MaxInFlight)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "  cache: %d hits  %d misses  (%.1f%% hit rate)\n",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	}
	if r.SharedEnrolled+r.SharedCoalesced+r.SharedBypassed > 0 {
		fmt.Fprintf(&b, "  shared: %d enrolled  %d coalesced  %d bypassed  %d shared batches\n",
			r.SharedEnrolled, r.SharedCoalesced, r.SharedBypassed, r.SharedBatches)
	}
	if r.SlowlogObserved > 0 {
		fmt.Fprintf(&b, "  profiles: %d observed  %d slow  (%d tenant series)\n",
			r.SlowlogObserved, r.SlowlogSlow, r.TenantSeries)
	}
	tenants := make([]string, 0, len(r.PerTenant))
	for name := range r.PerTenant {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		l := r.PerTenant[name]
		fmt.Fprintf(&b, "  %-12s %6d   %.1f qps   p50 %.2f ms   p95 %.2f ms   p99 %.2f ms\n",
			name, l.Count, l.QPS, l.P50MS, l.P95MS, l.P99MS)
	}
	names := make([]string, 0, len(r.PerOp))
	for name := range r.PerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := r.PerOp[name]
		fmt.Fprintf(&b, "  %-12s %6d   p50 %.2f ms   p95 %.2f ms   p99 %.2f ms\n",
			name, l.Count, l.P50MS, l.P95MS, l.P99MS)
	}
	return b.String()
}

// FetchMeta reads the server's dataset catalog.
func FetchMeta(addr string) ([]queryd.Meta, error) {
	resp, err := http.Get("http://" + addr + "/datasets")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching datasets: %w", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Datasets []queryd.Meta `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("loadgen: decoding datasets: %w", err)
	}
	if len(payload.Datasets) == 0 {
		return nil, fmt.Errorf("loadgen: server has no datasets")
	}
	return payload.Datasets, nil
}

// serverStats is the /stats slice the load harness compares across a run.
type serverStats struct {
	Cache   queryd.CacheStats      `json:"cache"`
	Shared  queryd.SharedScanStats `json:"shared_scan"`
	Tenants []json.RawMessage      `json:"tenants"`
}

// fetchServerStats reads the cumulative cache and shared-scan counters.
func fetchServerStats(addr string) (serverStats, error) {
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		return serverStats{}, fmt.Errorf("loadgen: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	var payload serverStats
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return serverStats{}, fmt.Errorf("loadgen: decoding stats: %w", err)
	}
	return payload, nil
}

// FetchCacheStats reads the server's result-cache counters from /stats.
func FetchCacheStats(addr string) (queryd.CacheStats, error) {
	s, err := fetchServerStats(addr)
	return s.Cache, err
}

// slowlogStats is the /debug/slowlog slice the harness diffs across a
// run.
type slowlogStats struct {
	Observed uint64 `json:"observed"`
	Slow     uint64 `json:"slow"`
}

// fetchSlowlog reads the server's cumulative slow-query-log counters.
func fetchSlowlog(addr string) (slowlogStats, error) {
	resp, err := http.Get("http://" + addr + "/debug/slowlog")
	if err != nil {
		return slowlogStats{}, fmt.Errorf("loadgen: fetching slowlog: %w", err)
	}
	defer resp.Body.Close()
	var payload slowlogStats
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return slowlogStats{}, fmt.Errorf("loadgen: decoding slowlog: %w", err)
	}
	return payload, nil
}

// SetProfileSample swaps only the server's profile_sample knob through
// the control plane: read the current config, change the one field,
// POST the whole thing back (the control plane takes full configs).
// The load harness uses it to compare profiled and unprofiled phases on
// one server without restarting it.
func SetProfileSample(addr string, n int) error {
	resp, err := http.Get("http://" + addr + "/control/config")
	if err != nil {
		return fmt.Errorf("loadgen: fetching config: %w", err)
	}
	var cfg queryd.Config
	err = json.NewDecoder(resp.Body).Decode(&cfg)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("loadgen: decoding config: %w", err)
	}
	cfg.ProfileSample = n
	body, err := json.Marshal(map[string]any{"config": cfg})
	if err != nil {
		return err
	}
	post, err := http.Post("http://"+addr+"/control/config", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: swapping config: %w", err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(post.Body)
		return fmt.Errorf("loadgen: config swap got %d: %s", post.StatusCode, data)
	}
	return nil
}

// q builds a /query body.
func q(fields map[string]any) json.RawMessage {
	data, err := json.Marshal(fields)
	if err != nil {
		panic(err)
	}
	return data
}

// DefaultMix builds the standard serving mix for one dataset: mostly
// cheap predicated aggregates, some group-bys, and an occasional graph
// kernel — the interleaved multi-tenant shape the adaptivity loop was
// built for.
func DefaultMix(m queryd.Meta) []QuerySpec {
	var mix []QuerySpec
	if m.Rows > 0 {
		mix = append(mix,
			QuerySpec{Name: "agg-sum", Weight: 6, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "sum", "column": "amount",
				"where": []map[string]any{{"column": "region", "op": "<", "value": 8}},
			})},
			QuerySpec{Name: "agg-count", Weight: 4, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "count", "column": "amount",
				"where": []map[string]any{{"column": "flag", "op": "=", "value": 1}},
			})},
			QuerySpec{Name: "agg-max", Weight: 2, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "max", "column": "amount",
			})},
			QuerySpec{Name: "groupby", Weight: 3, Body: q(map[string]any{
				"dataset": m.Name, "op": "groupby", "key": "region", "agg": "sum", "column": "amount",
				"where": []map[string]any{{"column": "flag", "op": "=", "value": 1}},
			})},
		)
	}
	if m.Vertices > 0 {
		mix = append(mix,
			QuerySpec{Name: "degree", Weight: 2, Body: q(map[string]any{
				"dataset": m.Name, "op": "degree",
			})},
			QuerySpec{Name: "bfs", Weight: 1, Body: q(map[string]any{
				"dataset": m.Name, "op": "bfs", "source": 0,
			})},
			QuerySpec{Name: "pagerank", Weight: 1, Body: q(map[string]any{
				"dataset": m.Name, "op": "pagerank", "iters": 5, "priority": -1,
			})},
		)
	}
	return mix
}

// TableOnly filters a mix down to table-scan plans (aggregate/groupby) by
// inspecting each body's op field — the shape the shared-scan smoke phase
// drives so every request is a coalescing candidate.
func TableOnly(mix []QuerySpec) []QuerySpec {
	var out []QuerySpec
	for _, s := range mix {
		var body struct {
			Op string `json:"op"`
		}
		if json.Unmarshal(s.Body, &body) == nil && (body.Op == "aggregate" || body.Op == "groupby") {
			out = append(out, s)
		}
	}
	return out
}

// splitmix64 is the standard 64-bit finalizer used to derive per-client
// seed streams: adjacent raw seeds fed straight into math/rand produce
// visibly correlated pick sequences, while splitmix64(seed+i*gamma) gives
// every client an independent-looking stream from one user-facing seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// streamSeed derives the RNG seed for one numbered stream of a run.
func streamSeed(seed int64, stream uint64) int64 {
	return int64(splitmix64(uint64(seed) + (stream+1)*0x9E3779B97F4A7C15))
}

// picker selects mix entries by weight.
type picker struct {
	mix    []QuerySpec
	bounds []int
	total  int
}

func newPicker(mix []QuerySpec) (*picker, error) {
	p := &picker{mix: mix}
	for _, s := range mix {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: spec %q has non-positive weight", s.Name)
		}
		p.total += s.Weight
		p.bounds = append(p.bounds, p.total)
	}
	if p.total == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	return p, nil
}

func (p *picker) pick(rng *rand.Rand) int {
	n := rng.Intn(p.total)
	for i, b := range p.bounds {
		if n < b {
			return i
		}
	}
	return len(p.mix) - 1
}

// withTenant returns body with the tenant field set. Setup-time only —
// the hot path indexes pre-built bodies.
func withTenant(body json.RawMessage, tenant string) json.RawMessage {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	m["tenant"] = tenant
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// Run executes the load run.
func Run(opts Options) (*Report, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	mix := opts.Mix
	if len(mix) == 0 {
		metas, err := FetchMeta(opts.Addr)
		if err != nil {
			return nil, err
		}
		mix = DefaultMix(metas[0])
	}
	if opts.AggOnly {
		mix = TableOnly(mix)
		if len(mix) == 0 {
			return nil, fmt.Errorf("loadgen: AggOnly left no table-scan specs in the mix")
		}
	}
	pk, err := newPicker(mix)
	if err != nil {
		return nil, err
	}

	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency * 2,
			MaxIdleConnsPerHost: opts.Concurrency * 2,
		},
	}
	url := "http://" + opts.Addr + "/query"

	var (
		hist      obs.Histogram
		sent      atomic.Uint64
		ok        atomic.Uint64
		rejected  atomic.Uint64
		other4xx  atomic.Uint64
		errs5xx   atomic.Uint64
		transport atomic.Uint64
		dropped   atomic.Uint64
		inflight  atomic.Int64
		maxInFl   atomic.Int64
		tenantSeq atomic.Uint64
	)
	// One lock-free histogram per plan type, pre-created before workers
	// start so the hot path only reads the map (concurrent map reads are
	// safe; obs.Histogram.Observe is atomic).
	opHists := make(map[string]*obs.Histogram, len(mix))
	for i := range mix {
		if _, dup := opHists[mix[i].Name]; !dup {
			opHists[mix[i].Name] = &obs.Histogram{}
		}
	}
	// Tenant fan-out: bodies[t][i] is spec i stamped with tenant t's
	// identity; requests round-robin over tenants. One histogram and one
	// success counter per tenant back the client-side breakdown.
	nTenants := opts.Tenants
	if nTenants < 1 {
		nTenants = 1
	}
	var tenantBodies [][]json.RawMessage
	var tenantHists []*obs.Histogram
	var tenantOK []atomic.Uint64
	if nTenants > 1 {
		tenantBodies = make([][]json.RawMessage, nTenants)
		tenantHists = make([]*obs.Histogram, nTenants)
		tenantOK = make([]atomic.Uint64, nTenants)
		for t := 0; t < nTenants; t++ {
			name := fmt.Sprintf("tenant-%d", t)
			tenantBodies[t] = make([]json.RawMessage, len(mix))
			for i := range mix {
				tenantBodies[t][i] = withTenant(mix[i].Body, name)
			}
			tenantHists[t] = &obs.Histogram{}
		}
	}

	issue := func(idx int) {
		cur := inflight.Add(1)
		for {
			prev := maxInFl.Load()
			if cur <= prev || maxInFl.CompareAndSwap(prev, cur) {
				break
			}
		}
		defer inflight.Add(-1)

		spec := &mix[idx]
		body := spec.Body
		tenant := -1
		if nTenants > 1 {
			tenant = int(tenantSeq.Add(1) % uint64(nTenants))
			body = tenantBodies[tenant][idx]
		}
		sent.Add(1)
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			transport.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		hist.ObserveSince(start)
		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
			opHists[spec.Name].ObserveSince(start)
			if tenant >= 0 {
				tenantOK[tenant].Add(1)
				tenantHists[tenant].ObserveSince(start)
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		case resp.StatusCode >= 500:
			errs5xx.Add(1)
		default:
			other4xx.Add(1)
		}
	}

	// Cache, shared-scan, and slow-query-log counters are cumulative on
	// the server; snapshot before and after so the report carries this
	// run's delta. A fetch failure only zeroes those fields, never fails
	// the run.
	statsBefore, statsErr := fetchServerStats(opts.Addr)
	slowBefore, slowErr := fetchSlowlog(opts.Addr)

	begin := time.Now()
	deadline := begin.Add(opts.Duration)
	var wg sync.WaitGroup

	if opts.Rate > 0 {
		// Open loop: one goroutine paces Poisson arrivals; each arrival
		// dispatches unless the outstanding cap is hit. Gaps and picks use
		// separate seed streams so changing the mix never perturbs the
		// arrival process of a seeded run.
		gapRNG := rand.New(rand.NewSource(streamSeed(opts.Seed, 0)))
		pickRNG := rand.New(rand.NewSource(streamSeed(opts.Seed, 1)))
		for now := time.Now(); now.Before(deadline); now = time.Now() {
			gap := time.Duration(gapRNG.ExpFloat64() / opts.Rate * float64(time.Second))
			time.Sleep(gap)
			if !time.Now().Before(deadline) {
				break
			}
			if int(inflight.Load()) >= opts.Concurrency {
				dropped.Add(1)
				continue
			}
			idx := pk.pick(pickRNG)
			wg.Add(1)
			go func() {
				defer wg.Done()
				issue(idx)
			}()
		}
	} else {
		// Closed loop: Concurrency workers back-to-back, each with its own
		// derived seed stream.
		for c := 0; c < opts.Concurrency; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(deadline) {
					issue(pk.pick(rng))
				}
			}(streamSeed(opts.Seed, uint64(c)+2))
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	snap := hist.Snapshot()
	mode := "closed-loop"
	if opts.Rate > 0 {
		mode = fmt.Sprintf("open-loop (%.0f/s Poisson)", opts.Rate)
	}
	rep := &Report{
		Addr:        opts.Addr,
		Mode:        mode,
		DurationSec: elapsed.Seconds(),
		Concurrency: opts.Concurrency,
		RateTarget:  opts.Rate,
		Sent:        sent.Load(),
		OK:          ok.Load(),
		Rejected:    rejected.Load(),
		Other4xx:    other4xx.Load(),
		Errors5xx:   errs5xx.Load(),
		Transport:   transport.Load(),
		Dropped:     dropped.Load(),
		QPS:         float64(ok.Load()) / elapsed.Seconds(),
		MaxInFlight: int(maxInFl.Load()),
		PerOp:       make(map[string]OpLatency, len(opHists)),
	}
	if snap.Count > 0 {
		rep.P50MS = snap.Quantile(0.50) / 1e6
		rep.P95MS = snap.Quantile(0.95) / 1e6
		rep.P99MS = snap.Quantile(0.99) / 1e6
	}
	for name, h := range opHists {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		rep.PerOp[name] = OpLatency{
			Count: s.Count,
			P50MS: s.Quantile(0.50) / 1e6,
			P95MS: s.Quantile(0.95) / 1e6,
			P99MS: s.Quantile(0.99) / 1e6,
		}
	}
	if nTenants > 1 {
		rep.PerTenant = make(map[string]TenantLatency, nTenants)
		for t := 0; t < nTenants; t++ {
			s := tenantHists[t].Snapshot()
			if s.Count == 0 {
				continue
			}
			rep.PerTenant[fmt.Sprintf("tenant-%d", t)] = TenantLatency{
				Count: tenantOK[t].Load(),
				QPS:   float64(tenantOK[t].Load()) / elapsed.Seconds(),
				P50MS: s.Quantile(0.50) / 1e6,
				P95MS: s.Quantile(0.95) / 1e6,
				P99MS: s.Quantile(0.99) / 1e6,
			}
		}
	}
	if statsErr == nil {
		if statsAfter, err := fetchServerStats(opts.Addr); err == nil {
			rep.CacheHits = statsAfter.Cache.Hits - statsBefore.Cache.Hits
			rep.CacheMisses = statsAfter.Cache.Misses - statsBefore.Cache.Misses
			if total := rep.CacheHits + rep.CacheMisses; total > 0 {
				rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
			}
			rep.SharedEnrolled = statsAfter.Shared.Enrolled - statsBefore.Shared.Enrolled
			rep.SharedCoalesced = statsAfter.Shared.Coalesced - statsBefore.Shared.Coalesced
			rep.SharedBypassed = statsAfter.Shared.Bypassed - statsBefore.Shared.Bypassed
			rep.SharedBatches = statsAfter.Shared.SharedBatches - statsBefore.Shared.SharedBatches
			rep.TenantSeries = len(statsAfter.Tenants)
		}
	}
	if slowErr == nil {
		if slowAfter, err := fetchSlowlog(opts.Addr); err == nil {
			rep.SlowlogObserved = slowAfter.Observed - slowBefore.Observed
			rep.SlowlogSlow = slowAfter.Slow - slowBefore.Slow
		}
	}
	if math.IsNaN(rep.QPS) || math.IsInf(rep.QPS, 0) {
		rep.QPS = 0
	}
	return rep, nil
}

// SpotCheck issues deterministic queries and verifies them against the
// dataset's build-time invariants: sum(column) matches the catalog
// checksum, unpredicated count matches the row count, and the degree sum
// equals twice the edge count. Retries once per query on 429 — the spot
// check may run while load is saturating admission.
func SpotCheck(addr string) error {
	metas, err := FetchMeta(addr)
	if err != nil {
		return err
	}
	m := metas[0]
	post := func(body json.RawMessage) (map[string]json.RawMessage, error) {
		for attempt := 0; ; attempt++ {
			resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode == http.StatusTooManyRequests && attempt < 20 {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("loadgen: spot check got %d: %s", resp.StatusCode, data)
			}
			var env struct {
				Result map[string]json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(data, &env); err != nil {
				return nil, err
			}
			return env.Result, nil
		}
	}
	asUint := func(res map[string]json.RawMessage, field string) (uint64, error) {
		raw, okf := res[field]
		if !okf {
			return 0, fmt.Errorf("loadgen: result missing %q", field)
		}
		var v uint64
		err := json.Unmarshal(raw, &v)
		return v, err
	}

	if m.Rows > 0 {
		for _, col := range m.Columns {
			res, err := post(q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "sum", "column": col.Name,
			}))
			if err != nil {
				return err
			}
			got, err := asUint(res, "value")
			if err != nil {
				return err
			}
			if got != col.Sum {
				return fmt.Errorf("loadgen: sum(%s) = %d, catalog checksum %d", col.Name, got, col.Sum)
			}
		}
		res, err := post(q(map[string]any{
			"dataset": m.Name, "op": "aggregate", "agg": "count", "column": "amount",
		}))
		if err != nil {
			return err
		}
		got, err := asUint(res, "value")
		if err != nil {
			return err
		}
		if got != m.Rows {
			return fmt.Errorf("loadgen: count = %d, catalog rows %d", got, m.Rows)
		}
	}
	if m.Vertices > 0 {
		res, err := post(q(map[string]any{"dataset": m.Name, "op": "degree"}))
		if err != nil {
			return err
		}
		got, err := asUint(res, "degree_sum")
		if err != nil {
			return err
		}
		if got != 2*m.Edges {
			return fmt.Errorf("loadgen: degree sum = %d, want 2x%d edges", got, m.Edges)
		}
	}
	return nil
}
