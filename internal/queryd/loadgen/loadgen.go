// Package loadgen drives a queryd server with a mixed query workload and
// reports throughput and latency percentiles — the serving-path
// counterpart of the modeled-figure benchmarks, and the thing the
// load-smoke CI gate runs.
//
// Two arrival models:
//
//   - Open loop (Rate > 0): arrivals follow a Poisson process at Rate
//     queries/sec, independent of completions — the honest overload
//     model, where a slow server accumulates outstanding requests
//     instead of silently slowing the generator down. Concurrency caps
//     the outstanding requests; arrivals past the cap are counted as
//     dropped, never silently delayed.
//   - Closed loop (Rate == 0): Concurrency workers issue queries
//     back-to-back — the classic "N concurrent clients" shape the
//     EXPERIMENTS table uses.
//
// Latencies land in an obs.Histogram (the same log2-bucketed lock-free
// histogram the server uses), so client- and server-side percentiles are
// directly comparable.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"smartarrays/internal/obs"
	"smartarrays/internal/queryd"
)

// QuerySpec is one weighted entry of the workload mix.
type QuerySpec struct {
	// Name labels the spec in the report ("agg-sum", "pagerank"...).
	Name string `json:"name"`
	// Weight is the relative pick frequency.
	Weight int `json:"weight"`
	// Body is the /query JSON payload.
	Body json.RawMessage `json:"body"`
}

// Options configure one load run.
type Options struct {
	// Addr is the server's host:port.
	Addr string
	// Duration is how long to generate load.
	Duration time.Duration
	// Rate selects open-loop Poisson arrivals per second; 0 selects
	// closed-loop.
	Rate float64
	// Concurrency is the closed-loop worker count, or the open-loop
	// outstanding-request cap.
	Concurrency int
	// Mix is the weighted workload; empty uses DefaultMix against the
	// server's first dataset.
	Mix []QuerySpec
	// Seed makes template picks and Poisson gaps reproducible.
	Seed int64
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
}

// Report is the machine-readable result (written as JSON by saload and
// asserted on by the CI gate).
type Report struct {
	Addr        string  `json:"addr"`
	Mode        string  `json:"mode"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target,omitempty"`

	Sent      uint64 `json:"sent"`
	OK        uint64 `json:"ok"`
	Rejected  uint64 `json:"rejected_429"`
	Other4xx  uint64 `json:"other_4xx"`
	Errors5xx uint64 `json:"errors_5xx"`
	Transport uint64 `json:"transport_errors"`
	Dropped   uint64 `json:"dropped_arrivals"`

	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxInFlight int     `json:"max_in_flight_observed"`

	// Server-side result-cache deltas over the run (zero when the server
	// runs with caching off or /stats is unreachable).
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	PerOp map[string]uint64 `json:"per_op"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders the human-readable one-screen result.
func (r *Report) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "loadgen: %s for %.1fs against %s\n", r.Mode, r.DurationSec, r.Addr)
	fmt.Fprintf(&b, "  sent %d  ok %d  429 %d  4xx %d  5xx %d  transport %d  dropped %d\n",
		r.Sent, r.OK, r.Rejected, r.Other4xx, r.Errors5xx, r.Transport, r.Dropped)
	fmt.Fprintf(&b, "  %.1f queries/sec   p50 %.2f ms   p95 %.2f ms   p99 %.2f ms   max in-flight %d\n",
		r.QPS, r.P50MS, r.P95MS, r.P99MS, r.MaxInFlight)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "  cache: %d hits  %d misses  (%.1f%% hit rate)\n",
			r.CacheHits, r.CacheMisses, 100*r.CacheHitRate)
	}
	for name, n := range r.PerOp {
		fmt.Fprintf(&b, "  %-12s %d\n", name, n)
	}
	return b.String()
}

// FetchMeta reads the server's dataset catalog.
func FetchMeta(addr string) ([]queryd.Meta, error) {
	resp, err := http.Get("http://" + addr + "/datasets")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetching datasets: %w", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Datasets []queryd.Meta `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("loadgen: decoding datasets: %w", err)
	}
	if len(payload.Datasets) == 0 {
		return nil, fmt.Errorf("loadgen: server has no datasets")
	}
	return payload.Datasets, nil
}

// FetchCacheStats reads the server's result-cache counters from /stats.
func FetchCacheStats(addr string) (queryd.CacheStats, error) {
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		return queryd.CacheStats{}, fmt.Errorf("loadgen: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	var payload struct {
		Cache queryd.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return queryd.CacheStats{}, fmt.Errorf("loadgen: decoding stats: %w", err)
	}
	return payload.Cache, nil
}

// q builds a /query body.
func q(fields map[string]any) json.RawMessage {
	data, err := json.Marshal(fields)
	if err != nil {
		panic(err)
	}
	return data
}

// DefaultMix builds the standard serving mix for one dataset: mostly
// cheap predicated aggregates, some group-bys, and an occasional graph
// kernel — the interleaved multi-tenant shape the adaptivity loop was
// built for.
func DefaultMix(m queryd.Meta) []QuerySpec {
	var mix []QuerySpec
	if m.Rows > 0 {
		mix = append(mix,
			QuerySpec{Name: "agg-sum", Weight: 6, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "sum", "column": "amount",
				"where": []map[string]any{{"column": "region", "op": "<", "value": 8}},
			})},
			QuerySpec{Name: "agg-count", Weight: 4, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "count", "column": "amount",
				"where": []map[string]any{{"column": "flag", "op": "=", "value": 1}},
			})},
			QuerySpec{Name: "agg-max", Weight: 2, Body: q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "max", "column": "amount",
			})},
			QuerySpec{Name: "groupby", Weight: 3, Body: q(map[string]any{
				"dataset": m.Name, "op": "groupby", "key": "region", "agg": "sum", "column": "amount",
				"where": []map[string]any{{"column": "flag", "op": "=", "value": 1}},
			})},
		)
	}
	if m.Vertices > 0 {
		mix = append(mix,
			QuerySpec{Name: "degree", Weight: 2, Body: q(map[string]any{
				"dataset": m.Name, "op": "degree",
			})},
			QuerySpec{Name: "bfs", Weight: 1, Body: q(map[string]any{
				"dataset": m.Name, "op": "bfs", "source": 0,
			})},
			QuerySpec{Name: "pagerank", Weight: 1, Body: q(map[string]any{
				"dataset": m.Name, "op": "pagerank", "iters": 5, "priority": -1,
			})},
		)
	}
	return mix
}

// picker selects mix entries by weight.
type picker struct {
	mix    []QuerySpec
	bounds []int
	total  int
}

func newPicker(mix []QuerySpec) (*picker, error) {
	p := &picker{mix: mix}
	for _, s := range mix {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: spec %q has non-positive weight", s.Name)
		}
		p.total += s.Weight
		p.bounds = append(p.bounds, p.total)
	}
	if p.total == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	return p, nil
}

func (p *picker) pick(rng *rand.Rand) *QuerySpec {
	n := rng.Intn(p.total)
	for i, b := range p.bounds {
		if n < b {
			return &p.mix[i]
		}
	}
	return &p.mix[len(p.mix)-1]
}

// Run executes the load run.
func Run(opts Options) (*Report, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive duration")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	mix := opts.Mix
	if len(mix) == 0 {
		metas, err := FetchMeta(opts.Addr)
		if err != nil {
			return nil, err
		}
		mix = DefaultMix(metas[0])
	}
	pk, err := newPicker(mix)
	if err != nil {
		return nil, err
	}

	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency * 2,
			MaxIdleConnsPerHost: opts.Concurrency * 2,
		},
	}
	url := "http://" + opts.Addr + "/query"

	var (
		hist      obs.Histogram
		sent      atomic.Uint64
		ok        atomic.Uint64
		rejected  atomic.Uint64
		other4xx  atomic.Uint64
		errs5xx   atomic.Uint64
		transport atomic.Uint64
		dropped   atomic.Uint64
		inflight  atomic.Int64
		maxInFl   atomic.Int64
		perOpMu   sync.Mutex
	)
	perOp := map[string]uint64{}

	issue := func(spec *QuerySpec) {
		cur := inflight.Add(1)
		for {
			prev := maxInFl.Load()
			if cur <= prev || maxInFl.CompareAndSwap(prev, cur) {
				break
			}
		}
		defer inflight.Add(-1)

		sent.Add(1)
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(spec.Body))
		if err != nil {
			transport.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		hist.ObserveSince(start)
		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
			perOpMu.Lock()
			perOp[spec.Name]++
			perOpMu.Unlock()
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		case resp.StatusCode >= 500:
			errs5xx.Add(1)
		default:
			other4xx.Add(1)
		}
	}

	// Cache counters are cumulative on the server; snapshot before and
	// after so the report carries this run's delta. A fetch failure only
	// zeroes the cache fields, never fails the run.
	cacheBefore, cacheErr := FetchCacheStats(opts.Addr)

	begin := time.Now()
	deadline := begin.Add(opts.Duration)
	var wg sync.WaitGroup

	if opts.Rate > 0 {
		// Open loop: one goroutine paces Poisson arrivals; each arrival
		// dispatches unless the outstanding cap is hit.
		rng := rand.New(rand.NewSource(opts.Seed | 1))
		for now := time.Now(); now.Before(deadline); now = time.Now() {
			gap := time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second))
			time.Sleep(gap)
			if !time.Now().Before(deadline) {
				break
			}
			if int(inflight.Load()) >= opts.Concurrency {
				dropped.Add(1)
				continue
			}
			spec := pk.pick(rng)
			wg.Add(1)
			go func() {
				defer wg.Done()
				issue(spec)
			}()
		}
	} else {
		// Closed loop: Concurrency workers back-to-back.
		for c := 0; c < opts.Concurrency; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(deadline) {
					issue(pk.pick(rng))
				}
			}(opts.Seed + int64(c) + 1)
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	snap := hist.Snapshot()
	mode := "closed-loop"
	if opts.Rate > 0 {
		mode = fmt.Sprintf("open-loop (%.0f/s Poisson)", opts.Rate)
	}
	rep := &Report{
		Addr:        opts.Addr,
		Mode:        mode,
		DurationSec: elapsed.Seconds(),
		Concurrency: opts.Concurrency,
		RateTarget:  opts.Rate,
		Sent:        sent.Load(),
		OK:          ok.Load(),
		Rejected:    rejected.Load(),
		Other4xx:    other4xx.Load(),
		Errors5xx:   errs5xx.Load(),
		Transport:   transport.Load(),
		Dropped:     dropped.Load(),
		QPS:         float64(ok.Load()) / elapsed.Seconds(),
		MaxInFlight: int(maxInFl.Load()),
		PerOp:       perOp,
	}
	if snap.Count > 0 {
		rep.P50MS = snap.Quantile(0.50) / 1e6
		rep.P95MS = snap.Quantile(0.95) / 1e6
		rep.P99MS = snap.Quantile(0.99) / 1e6
	}
	if cacheErr == nil {
		if cacheAfter, err := FetchCacheStats(opts.Addr); err == nil {
			rep.CacheHits = cacheAfter.Hits - cacheBefore.Hits
			rep.CacheMisses = cacheAfter.Misses - cacheBefore.Misses
			if total := rep.CacheHits + rep.CacheMisses; total > 0 {
				rep.CacheHitRate = float64(rep.CacheHits) / float64(total)
			}
		}
	}
	if math.IsNaN(rep.QPS) || math.IsInf(rep.QPS, 0) {
		rep.QPS = 0
	}
	return rep, nil
}

// SpotCheck issues deterministic queries and verifies them against the
// dataset's build-time invariants: sum(column) matches the catalog
// checksum, unpredicated count matches the row count, and the degree sum
// equals twice the edge count. Retries once per query on 429 — the spot
// check may run while load is saturating admission.
func SpotCheck(addr string) error {
	metas, err := FetchMeta(addr)
	if err != nil {
		return err
	}
	m := metas[0]
	post := func(body json.RawMessage) (map[string]json.RawMessage, error) {
		for attempt := 0; ; attempt++ {
			resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode == http.StatusTooManyRequests && attempt < 20 {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("loadgen: spot check got %d: %s", resp.StatusCode, data)
			}
			var env struct {
				Result map[string]json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(data, &env); err != nil {
				return nil, err
			}
			return env.Result, nil
		}
	}
	asUint := func(res map[string]json.RawMessage, field string) (uint64, error) {
		raw, okf := res[field]
		if !okf {
			return 0, fmt.Errorf("loadgen: result missing %q", field)
		}
		var v uint64
		err := json.Unmarshal(raw, &v)
		return v, err
	}

	if m.Rows > 0 {
		for _, col := range m.Columns {
			res, err := post(q(map[string]any{
				"dataset": m.Name, "op": "aggregate", "agg": "sum", "column": col.Name,
			}))
			if err != nil {
				return err
			}
			got, err := asUint(res, "value")
			if err != nil {
				return err
			}
			if got != col.Sum {
				return fmt.Errorf("loadgen: sum(%s) = %d, catalog checksum %d", col.Name, got, col.Sum)
			}
		}
		res, err := post(q(map[string]any{
			"dataset": m.Name, "op": "aggregate", "agg": "count", "column": "amount",
		}))
		if err != nil {
			return err
		}
		got, err := asUint(res, "value")
		if err != nil {
			return err
		}
		if got != m.Rows {
			return fmt.Errorf("loadgen: count = %d, catalog rows %d", got, m.Rows)
		}
	}
	if m.Vertices > 0 {
		res, err := post(q(map[string]any{"dataset": m.Name, "op": "degree"}))
		if err != nil {
			return err
		}
		got, err := asUint(res, "degree_sum")
		if err != nil {
			return err
		}
		if got != 2*m.Edges {
			return fmt.Errorf("loadgen: degree sum = %d, want 2x%d edges", got, m.Edges)
		}
	}
	return nil
}
