// End-to-end tests for query profiling: "explain": true on both table
// ops, the chunk-accounting invariant, agreement between profile fields
// and the /stats counters (cache, shared scan, admission), the
// /debug/slowlog and /debug/query/<id> surfaces, and the -race exercise
// of profiled queries against config swaps and live re-encoding.
package queryd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"smartarrays/internal/encoding"
	"smartarrays/internal/obs"
)

// profileOf decodes the inline profile from an explain response.
func profileOf(t *testing.T, env map[string]json.RawMessage) *obs.QueryProfile {
	t.Helper()
	raw, ok := env["profile"]
	if !ok {
		t.Fatal("explain response carried no profile")
	}
	var p obs.QueryProfile
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatalf("decoding profile: %v", err)
	}
	return &p
}

// checkStageSum asserts the disjoint stage spans account for the total:
// their sum may not exceed TotalNs and must reach at least 90% of it
// (the gap is glue code between stages).
func checkStageSum(t *testing.T, p *obs.QueryProfile) {
	t.Helper()
	checkStageSumFloor(t, p, 0.9)
}

// checkStageSumFloor is checkStageSum with an explicit coverage floor.
// The chaos tests pass a looser floor: between-stage gaps are wall
// time, so a goroutine preempted at a stage boundary by the chaos
// writers (or anything else on a loaded 1-core CI host) legitimately
// accrues unaccounted time.
func checkStageSumFloor(t *testing.T, p *obs.QueryProfile, floor float64) {
	t.Helper()
	var sum uint64
	for _, st := range p.Stages {
		sum += st.Ns
	}
	if p.TotalNs == 0 {
		t.Fatal("TotalNs == 0")
	}
	if sum > p.TotalNs {
		t.Errorf("stage sum %d exceeds TotalNs %d", sum, p.TotalNs)
	}
	if float64(sum) < floor*float64(p.TotalNs) {
		t.Errorf("stage sum %d is under %.0f%% of TotalNs %d — unaccounted time", sum, floor*100, p.TotalNs)
	}
}

// checkChunkInvariant asserts every profiled column obeys
// scanned + pruned == chunks for a full-table pass.
func checkChunkInvariant(t *testing.T, p *obs.QueryProfile, wantChunks uint64) {
	t.Helper()
	for _, c := range p.Columns {
		if wantChunks > 0 && c.Chunks != wantChunks {
			t.Errorf("column %s (%s): %d chunks, want %d", c.Column, c.Role, c.Chunks, wantChunks)
		}
		if c.ChunksScanned+c.ChunksPruned != c.Chunks {
			t.Errorf("column %s (%s): scanned %d + pruned %d != chunks %d",
				c.Column, c.Role, c.ChunksScanned, c.ChunksPruned, c.Chunks)
		}
		if c.Codec == "" {
			t.Errorf("column %s: empty codec", c.Column)
		}
	}
}

func stageNames(p *obs.QueryProfile) []string {
	names := make([]string, len(p.Stages))
	for i, st := range p.Stages {
		names[i] = st.Name
	}
	return names
}

// TestExplainAggregateProfile runs EXPLAIN ANALYZE on a predicated
// aggregate with cache and sharing off: the profile must name every
// lifecycle stage, satisfy the chunk invariant on both touched columns,
// and record the scheduler's morsel work.
func TestExplainAggregateProfile(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	status, env := postQuery(t, ts, map[string]any{
		"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount",
		"where":   []map[string]any{{"column": "region", "op": "<", "value": 8}},
		"explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, env["error"])
	}
	p := profileOf(t, env)

	var qid uint64
	if err := json.Unmarshal(env["query_id"], &qid); err != nil || qid == 0 || p.ID != qid {
		t.Fatalf("profile id %d vs query_id %d (err %v)", p.ID, qid, err)
	}
	if p.Status != "ok" || p.HTTPStatus != http.StatusOK {
		t.Fatalf("profile status %q/%d, want ok/200", p.Status, p.HTTPStatus)
	}
	if p.Op != "aggregate" || p.Dataset != "demo" || p.Plan == "" {
		t.Errorf("identity fields: %+v", p)
	}
	if p.Cache != obs.CacheOff && p.Cache != obs.CacheBypass {
		t.Errorf("cache = %q with caching disabled", p.Cache)
	}
	if p.Shared == nil || p.Shared.Mode != obs.SharedOff {
		t.Errorf("shared = %+v, want mode off (coordinator disabled)", p.Shared)
	}

	want := map[string]bool{"parse": false, "admission": false, "execute": false}
	for _, name := range stageNames(p) {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("stage %q missing from %v", name, stageNames(p))
		}
	}
	checkStageSum(t, p)

	chunks := uint64((testRows + 63) / 64)
	if len(p.Columns) != 2 {
		t.Fatalf("profiled %d columns, want 2 (predicate + target): %+v", len(p.Columns), p.Columns)
	}
	roles := map[string]string{}
	for _, c := range p.Columns {
		roles[c.Column] = c.Role
	}
	if roles["region"] != obs.RolePredicate || roles["amount"] != obs.RoleTarget {
		t.Errorf("column roles = %v", roles)
	}
	checkChunkInvariant(t, p, chunks)

	if p.Loops == 0 || p.MorselsClaimed == 0 {
		t.Errorf("no scheduler work recorded: loops=%d claimed=%d", p.Loops, p.MorselsClaimed)
	}

	// An unpredicated min resolves from the zone index root: all chunks
	// pruned, nothing decoded — the invariant still holds.
	status, env = postQuery(t, ts, map[string]any{
		"dataset": "demo", "op": "aggregate", "agg": "min", "column": "amount", "explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("min status %d", status)
	}
	checkChunkInvariant(t, profileOf(t, env), chunks)
}

// TestExplainGroupByProfile is the group-by half of the acceptance
// check: three roles (predicate, key, target), same invariants.
func TestExplainGroupByProfile(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	status, env := postQuery(t, ts, map[string]any{
		"dataset": "demo", "op": "groupby", "key": "region", "agg": "sum", "column": "amount",
		"where":   []map[string]any{{"column": "flag", "op": "=", "value": 1}},
		"explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, env["error"])
	}
	p := profileOf(t, env)
	if p.Status != "ok" || p.Op != "groupby" {
		t.Fatalf("profile = %q/%q", p.Status, p.Op)
	}
	checkStageSum(t, p)
	if len(p.Columns) != 3 {
		t.Fatalf("profiled %d columns, want 3 (predicate + key + target): %+v", len(p.Columns), p.Columns)
	}
	roles := map[string]string{}
	for _, c := range p.Columns {
		roles[c.Column] = c.Role
	}
	if roles["flag"] != obs.RolePredicate || roles["region"] != obs.RoleKey || roles["amount"] != obs.RoleTarget {
		t.Errorf("column roles = %v", roles)
	}
	checkChunkInvariant(t, p, uint64((testRows+63)/64))
}

// TestProfileCacheAgreement samples every query and checks the profile
// cache outcomes against the /stats cache counters: one miss then one
// hit, with explain bypassing both lookup and fill.
func TestProfileCacheAgreement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 64
	cfg.ProfileSample = 1
	_, ts := newTestServer(t, cfg)
	body := map[string]any{
		"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount",
		"where": []map[string]any{{"column": "region", "op": "<", "value": 8}},
	}

	for i, wantCached := range []bool{false, true} {
		status, env := postQuery(t, ts, body)
		if status != http.StatusOK {
			t.Fatalf("query %d status %d", i, status)
		}
		var cached bool
		if raw, ok := env["cached"]; ok {
			_ = json.Unmarshal(raw, &cached)
		}
		if cached != wantCached {
			t.Fatalf("query %d cached=%v, want %v", i, cached, wantCached)
		}
	}

	// Sampled (non-explain) profiles are retained, not inlined: fetch
	// them by ID and check the recorded outcomes.
	for qid, want := range map[uint64]string{1: obs.CacheMiss, 2: obs.CacheHit} {
		p := fetchProfile(t, ts, qid)
		if p.Cache != want {
			t.Errorf("query %d profile cache = %q, want %q", qid, p.Cache, want)
		}
	}

	// Explain bypasses the cache in both directions and says so.
	body["explain"] = true
	status, env := postQuery(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("explain status %d", status)
	}
	if p := profileOf(t, env); p.Cache != obs.CacheBypass {
		t.Errorf("explain profile cache = %q, want bypass", p.Cache)
	}

	stats := fetchStats(t, ts)
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Errorf("stats cache = %+v, want exactly 1 hit / 1 miss (explain must not count)", stats.Cache)
	}
}

// TestProfileSharedAgreement fires concurrent identical explain queries
// through the shared-scan coordinator and reconciles the per-profile
// enrollment modes with the coordinator's /stats counters — every query
// took exactly one path, and both sides counted it.
func TestProfileSharedAgreement(t *testing.T) {
	srv, ts := newSharedTestServer(t, sharedConfig())
	body := sharedTestBodies()[0]
	body["explain"] = true

	const clients, rounds = 8, 3
	var wg sync.WaitGroup
	var enrolled, coalesced, bypassed, missing atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				status, env := postQuery(t, ts, body)
				if status != http.StatusOK {
					t.Errorf("status %d", status)
					continue
				}
				p := profileOf(t, env)
				if p.Shared == nil {
					missing.Add(1)
					continue
				}
				switch p.Shared.Mode {
				case obs.SharedEnrolled:
					enrolled.Add(1)
					if p.Shared.SegmentsFolded == 0 || p.Shared.WraparoundNs == 0 {
						t.Errorf("enrolled profile without wraparound accounting: %+v", p.Shared)
					}
				case obs.SharedCoalesced:
					coalesced.Add(1)
				case obs.SharedBypassed:
					bypassed.Add(1)
				default:
					t.Errorf("unexpected shared mode %q with coordinator on", p.Shared.Mode)
				}
			}
		}()
	}
	wg.Wait()
	if missing.Load() != 0 {
		t.Fatalf("%d table-op profiles had no shared section", missing.Load())
	}
	stats := srv.SharedStats()
	if stats.Enrolled != enrolled.Load() || stats.Coalesced != coalesced.Load() || stats.Bypassed != bypassed.Load() {
		t.Errorf("profiles saw enrolled/coalesced/bypassed %d/%d/%d, /stats counted %d/%d/%d",
			enrolled.Load(), coalesced.Load(), bypassed.Load(),
			stats.Enrolled, stats.Coalesced, stats.Bypassed)
	}
	if total := enrolled.Load() + coalesced.Load() + bypassed.Load(); total != clients*rounds {
		t.Errorf("modes sum to %d, want %d", total, clients*rounds)
	}
}

// TestShedProfileAgreement saturates admission with every query sampled:
// shed queries must emit minimal 429 profiles, and the slow-query log
// and per-tenant error series must agree with the admission counters.
func TestShedProfileAgreement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 1
	cfg.MaxQueue = 0
	cfg.ProfileSample = 1
	_, ts := newTestServer(t, cfg)

	var ok, rejected atomic.Uint64
	for round := 0; round < 10 && (ok.Load() == 0 || rejected.Load() == 0); round++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, _ := postQuery(t, ts, map[string]any{
					"dataset": "demo", "op": "pagerank", "iters": 30, "tenant": "acme",
				})
				switch status {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	if ok.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("saturation did not produce both outcomes: ok=%d rejected=%d", ok.Load(), rejected.Load())
	}

	stats := fetchStats(t, ts)
	if stats.Admission.Shed != rejected.Load() {
		t.Errorf("admission shed %d, client saw %d 429s", stats.Admission.Shed, rejected.Load())
	}

	// Every query was sampled, so the slowlog's recent ring holds one
	// profile per request, and the shed ones carry the shed status.
	slog := fetchSlowlogSnapshot(t, ts)
	if slog.Observed != ok.Load()+rejected.Load() {
		t.Errorf("slowlog observed %d, want %d", slog.Observed, ok.Load()+rejected.Load())
	}
	var shedProfiles uint64
	for _, p := range slog.Recent {
		if p.Status == "shed" {
			shedProfiles++
			if p.HTTPStatus != http.StatusTooManyRequests || p.Error == "" {
				t.Errorf("shed profile malformed: %+v", p)
			}
		}
	}
	if shedProfiles != rejected.Load() {
		t.Errorf("slowlog retained %d shed profiles, want %d", shedProfiles, rejected.Load())
	}

	// The always-on tenant RED series must agree too: one error per shed.
	var acme *obs.TenantOpSnapshot
	for i := range stats.Tenants {
		if stats.Tenants[i].Tenant == "acme" && stats.Tenants[i].Op == "pagerank" {
			acme = &stats.Tenants[i]
		}
	}
	if acme == nil {
		t.Fatalf("no tenant series for acme/pagerank: %+v", stats.Tenants)
	}
	if acme.Requests != ok.Load()+rejected.Load() || acme.Errors != rejected.Load() {
		t.Errorf("tenant series %+v, want requests=%d errors=%d",
			acme, ok.Load()+rejected.Load(), rejected.Load())
	}
}

// TestDebugQuerySurfaces exercises /debug/slowlog and /debug/query/<id>:
// retained profiles resolve by ID, bad IDs 400, unknown IDs 404.
func TestDebugQuerySurfaces(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	status, env := postQuery(t, ts, map[string]any{
		"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount", "explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	inline := profileOf(t, env)

	looked := fetchProfile(t, ts, inline.ID)
	if looked.ID != inline.ID || looked.TotalNs != inline.TotalNs {
		t.Errorf("lookup returned a different profile: %+v vs %+v", looked, inline)
	}

	slog := fetchSlowlogSnapshot(t, ts)
	if slog.Observed < 1 || len(slog.Recent) < 1 {
		t.Errorf("slowlog empty after a profiled query: %+v", slog)
	}
	if len(slog.Top) < 1 {
		t.Errorf("top-K empty after a profiled query")
	}

	for path, want := range map[string]int{
		"/debug/query/not-a-number": http.StatusBadRequest,
		"/debug/query/999999":       http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestProfilesUnderSwapAndReencode is the -race exercise: explain
// queries hammer both table ops while the control plane toggles
// profiling/sharing and the scanned columns re-encode live. Profiles
// must stay well-formed and the chunk invariant must hold throughout.
func TestProfilesUnderSwapAndReencode(t *testing.T) {
	srv, ts := newTestServer(t, sharedConfig())
	ds, err := srv.Dataset("demo")
	if err != nil {
		t.Fatal(err)
	}
	bodies := []map[string]any{
		{"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount",
			"where":   []map[string]any{{"column": "region", "op": "<", "value": 8}},
			"explain": true},
		{"dataset": "demo", "op": "groupby", "key": "region", "agg": "sum", "column": "amount",
			"where":   []map[string]any{{"column": "flag", "op": "=", "value": 1}},
			"explain": true},
	}

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(2)
	go func() {
		defer chaos.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := sharedConfig()
			cfg.ProfileSample = []int{0, 1, 16}[i%3]
			cfg.SharedScan = i%2 == 0
			cfg.SlowQueryMS = int64(1 + i%100)
			if err := srv.SwapConfig(cfg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer chaos.Done()
		kinds := []encoding.Kind{encoding.FoR, encoding.BitPacked, encoding.Dict}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, col := range []string{"amount", "region", "flag"} {
				_, _ = ds.Table.ReencodeColumn(col, kinds[i%len(kinds)], 0)
			}
		}
	}()

	const clients, perClient = 6, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, env := postQuery(t, ts, bodies[i%len(bodies)])
				if status != http.StatusOK {
					t.Errorf("status %d under chaos: %s", status, env["error"])
					continue
				}
				p := profileOf(t, env)
				if p.Status != "ok" {
					t.Errorf("profile status %q under chaos", p.Status)
				}
				checkStageSumFloor(t, p, 0.5)
				coalesced := p.Shared != nil && p.Shared.Mode == obs.SharedCoalesced
				if !coalesced && len(p.Columns) == 0 {
					t.Errorf("non-coalesced profile lost its columns: %+v", p)
				}
				checkChunkInvariant(t, p, uint64((testRows+63)/64))
			}
		}()
	}
	wg.Wait()
	close(stop)
	chaos.Wait()
}

// fetchProfile GETs /debug/query/<id>.
func fetchProfile(t *testing.T, ts *httptest.Server, id uint64) *obs.QueryProfile {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/debug/query/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/query/%d = %d", id, resp.StatusCode)
	}
	var p obs.QueryProfile
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return &p
}

// fetchSlowlogSnapshot GETs /debug/slowlog.
func fetchSlowlogSnapshot(t *testing.T, ts *httptest.Server) obs.SlowLogSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.SlowLogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// fetchStats GETs /stats.
func fetchStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}
