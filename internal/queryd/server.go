// Package queryd is the query-service data plane: a stdlib HTTP+JSON
// front end that serves colstore aggregations and graph kernels
// concurrently over one smart-array runtime.
//
// Architecture (the control-plane/data-plane split):
//
//   - Data plane: POST /query parses a plan, passes admission control,
//     and executes on a priority-tagged runtime view. Concurrency comes
//     from the rts.Scheduler — every in-flight query's loops are
//     multiplexed onto the shared worker pool at batch granularity, so a
//     cheap high-priority aggregate overtakes a long PageRank instead of
//     queueing behind it. The hot path takes no lock: configuration and
//     the dataset catalog are read through one atomic snapshot pointer.
//   - Control plane: GET/POST /control/config reads and replaces the
//     admission/quota configuration (and can materialize new datasets);
//     changes build a fresh immutable snapshot offline and swap it in
//     atomically. The obs/serve introspection endpoints (/metrics,
//     /arrays, /trace, /decisions) mount on the same server.
//
// Endpoints:
//
//	POST /query           run one query (JSON body, see internal/queryd/plan)
//	GET  /healthz         liveness
//	GET  /datasets        dataset catalog with column checksums
//	GET  /stats           admission + latency statistics (JSON)
//	GET  /control/config  current admission/quota config
//	POST /control/config  swap config (and optionally add datasets)
//	GET  /metrics ...     obs/serve introspection (same mux)
package queryd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartarrays/internal/colstore"
	"smartarrays/internal/obs"
	"smartarrays/internal/obs/serve"
	"smartarrays/internal/queryd/plan"
	"smartarrays/internal/rts"
)

// QueryHistogram is the recorder histogram receiving one end-to-end
// observation per served query (admission wait included); per-op
// histograms are named QueryHistogram + "." + op.
const QueryHistogram = "queryd.query"

// QueueWaitHistogram is the recorder histogram receiving one admission
// delay observation per admitted query — how long it sat between arrival
// and holding an in-flight slot. /stats surfaces its quantiles next to
// in_flight/queued, so queue pressure is visible before it becomes 429s.
const QueueWaitHistogram = "queryd.queue_wait"

// Server is the query service. Create with NewServer, then Start (or
// mount Handler under a test server).
type Server struct {
	rt    *rts.Runtime
	sched *rts.Scheduler
	rec   *obs.Recorder
	reg   *obs.ArrayRegistry

	// snap is the immutable config+catalog snapshot; the data plane loads
	// it exactly once per request.
	snap atomic.Pointer[snapshot]
	// ctlMu serializes control-plane writers (snapshot swaps); readers
	// never take it.
	ctlMu sync.Mutex

	adm *admission

	// cache is the bounded result LRU (see cache.go). Always allocated;
	// the capacity in the current snapshot's config decides whether it is
	// consulted, so a config swap can turn caching on or off live.
	cache *resultCache

	// shared is the shared-scan coordinator (see sharedscan.go). Always
	// allocated; the current snapshot's config decides whether eligible
	// queries consult it, so a swap can turn sharing on or off live
	// (in-flight waves simply drain).
	shared *sharedExec

	// slowlog retains finalized query profiles: the last N profiled
	// queries, the over-threshold slow ring, and the top-K slowest —
	// served at /debug/slowlog and /debug/query/<id>.
	slowlog *obs.SlowLog
	// qid numbers every query (the /debug/query/<id> key); sampleCtr
	// drives the 1-in-N profile sampling decision.
	qid       atomic.Uint64
	sampleCtr atomic.Uint64

	// served counts successfully executed queries; errs5xx counts
	// internal failures (the load gate requires this to stay zero).
	served  atomic.Uint64
	errs4xx atomic.Uint64
	errs5xx atomic.Uint64
}

// NewServer builds a server over rt. It attaches a scheduler to rt
// (taking ownership of loop execution — do not run exclusive-mode
// benchmarks on the same runtime afterwards), and registers the initial
// datasets. rec and reg may be nil to serve without telemetry.
func NewServer(rt *rts.Runtime, cfg Config, specs []DatasetSpec, rec *obs.Recorder, reg *obs.ArrayRegistry) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{rt: rt, rec: rec, reg: reg, adm: newAdmission(), cache: newResultCache(), shared: newSharedExec(rec)}
	s.slowlog = obs.NewSlowLog(0, 0, cfg.slowQueryThreshold())

	// Datasets are built before the scheduler attaches: initialization
	// wants the exclusive loop engine's first-touch determinism.
	datasets := make(map[string]*Dataset, len(specs))
	for _, spec := range specs {
		if _, dup := datasets[spec.Name]; dup {
			return nil, fmt.Errorf("queryd: duplicate dataset %q", spec.Name)
		}
		d, err := BuildDataset(rt, spec)
		if err != nil {
			return nil, err
		}
		datasets[spec.Name] = d
	}
	snap := &snapshot{cfg: cfg, datasets: datasets}
	s.snap.Store(snap)

	s.sched = rts.NewScheduler(rt)
	rt.SetScheduler(s.sched)
	return s, nil
}

// Close shuts the scheduler down. The HTTP listener must be closed first
// (Start's stop function does both, in order).
func (s *Server) Close() {
	s.sched.Close()
}

// Runtime returns the serving runtime (tests use it for direct-call
// comparisons; its loops go through the scheduler too, so calls are safe
// while serving).
func (s *Server) Runtime() *rts.Runtime { return s.rt }

// Dataset resolves a dataset from the current snapshot.
func (s *Server) Dataset(name string) (*Dataset, error) {
	return s.snap.Load().dataset(name)
}

// Config returns the current admission configuration.
func (s *Server) Config() Config {
	return s.snap.Load().cfg
}

// SharedStats snapshots the shared-scan coordinator counters.
func (s *Server) SharedStats() SharedScanStats {
	return s.shared.Stats()
}

// SwapConfig validates and atomically installs a new configuration,
// keeping the existing dataset catalog, then kicks the admission queue so
// raised limits take effect immediately.
func (s *Server) SwapConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.ctlMu.Lock()
	old := s.snap.Load()
	s.snap.Store(&snapshot{cfg: cfg, datasets: old.datasets, version: old.version + 1})
	s.ctlMu.Unlock()
	s.slowlog.SetThreshold(cfg.slowQueryThreshold())
	s.adm.Kick(cfg)
	return nil
}

// AddDataset materializes spec and installs it in a fresh snapshot. The
// build runs through the scheduler like any other work, so serving
// continues meanwhile; the new dataset becomes visible atomically.
func (s *Server) AddDataset(spec DatasetSpec) error {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if _, exists := s.snap.Load().datasets[spec.Name]; exists {
		return fmt.Errorf("queryd: dataset %q already exists", spec.Name)
	}
	d, err := BuildDataset(s.rt, spec)
	if err != nil {
		return err
	}
	old := s.snap.Load()
	datasets := make(map[string]*Dataset, len(old.datasets)+1)
	for k, v := range old.datasets {
		datasets[k] = v
	}
	datasets[spec.Name] = d
	s.snap.Store(&snapshot{cfg: old.cfg, datasets: datasets, version: old.version + 1})
	return nil
}

// Handler returns the full mux: data plane, control plane, and the
// obs/serve introspection endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/query/", s.handleQueryLookup)
	mux.HandleFunc("/control/config", s.handleConfig)
	if s.rec != nil {
		intro := serve.New(s.rec, s.reg).Handler()
		for _, path := range []string{"/metrics", "/arrays", "/trace", "/decisions"} {
			mux.Handle(path, intro)
		}
	}
	return mux
}

// Start binds addr (":0" picks a free port), serves in the background,
// and returns the bound address plus a stop function that closes the
// listener and then the scheduler.
func (s *Server) Start(addr string) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("queryd: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(l) }()
	stop := func() error {
		err := srv.Close()
		s.Close()
		return err
	}
	return l.Addr().String(), stop, nil
}

// queryResponse is the /query wire envelope.
type queryResponse struct {
	Op       string  `json:"op"`
	Dataset  string  `json:"dataset"`
	QueryID  uint64  `json:"query_id"`
	Result   any     `json:"result"`
	WallMS   float64 `json:"wall_ms"`
	Priority int     `json:"priority"`
	// Cached marks a result served from the result cache (the query
	// skipped admission and execution entirely).
	Cached bool `json:"cached,omitempty"`
	// Shared marks a result computed by a cooperative shared-scan pass
	// (enrolled or coalesced) rather than an independent scan.
	Shared bool `json:"shared,omitempty"`
	// Profile is the inline execution profile, present only when the
	// request set "explain": true.
	Profile *obs.QueryProfile `json:"profile,omitempty"`
}

// errorResponse is the error wire envelope.
type errorResponse struct {
	Error   string `json:"error"`
	QueryID uint64 `json:"query_id,omitempty"`
}

// maxQueryBody bounds request bodies; plans are small.
const maxQueryBody = 1 << 20

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// qStart anchors the whole profile: TotalNs and the latency
	// histogram both measure arrival to response.
	qStart := time.Now()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, errors.New("queryd: POST a query JSON body"))
		return
	}
	qid := s.qid.Add(1)
	// One snapshot load; the rest of the request sees a consistent
	// config+catalog no matter how many swaps land meanwhile.
	snap := s.snap.Load()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody))
	if err != nil {
		s.failQuery(w, http.StatusBadRequest, err, qid, s.maybeProfile(snap.cfg, false, qid, qStart), "invalid", "", "", qStart)
		return
	}
	p, err := plan.Parse(body)
	if err != nil {
		s.failQuery(w, http.StatusBadRequest, err, qid, s.maybeProfile(snap.cfg, false, qid, qStart), "invalid", "", "", qStart)
		return
	}
	prof := s.maybeProfile(snap.cfg, p.Explain, qid, qStart)
	if prof != nil {
		prof.Op = string(p.Op)
		prof.Dataset = p.Dataset
		prof.Tenant = p.Tenant
		prof.Plan = p.String()
		prof.Stage("parse", time.Since(qStart))
	}
	ds, err := snap.dataset(p.Dataset)
	if err != nil {
		s.failQuery(w, http.StatusNotFound, err, qid, prof, "error", p.Tenant, string(p.Op), qStart)
		return
	}

	// Cache lookup runs before admission: a hit costs two map operations
	// and skips the queue entirely, which is where the repeated-query
	// throughput win comes from. The key embeds the snapshot version and
	// the touched columns' generations, so a stale entry is unreachable
	// by construction. Explain skips both lookup and fill: a cached
	// answer has no execution to profile, and a profiled run must not
	// poison repeat-latency measurements with its own result.
	var key string
	cacheable := false
	if p.Explain {
		prof.Cache = obs.CacheBypass
	} else if snap.cfg.CacheEntries <= 0 {
		if prof != nil {
			prof.Cache = obs.CacheOff
		}
	} else {
		cacheStart := time.Now()
		key, cacheable = cacheKey(snap, ds, p)
		var result any
		hit := false
		if cacheable {
			result, hit = s.cache.get(key)
		}
		if prof != nil {
			switch {
			case hit:
				prof.Cache = obs.CacheHit
			case cacheable:
				prof.Cache = obs.CacheMiss
			default:
				prof.Cache = obs.CacheBypass
			}
			prof.Stage("cache", time.Since(cacheStart))
		}
		if hit {
			wall := time.Since(qStart)
			if s.rec != nil {
				s.rec.Histogram(QueryHistogram).Observe(uint64(wall.Nanoseconds()))
				s.rec.Histogram(QueryHistogram + "." + string(p.Op)).Observe(uint64(wall.Nanoseconds()))
			}
			s.observeTenant(p.Tenant, string(p.Op), wall, false)
			s.finishProfile(prof, "ok", http.StatusOK)
			s.served.Add(1)
			writeJSON(w, http.StatusOK, queryResponse{
				Op:       string(p.Op),
				Dataset:  p.Dataset,
				QueryID:  qid,
				Result:   result,
				WallMS:   float64(wall.Nanoseconds()) / 1e6,
				Priority: snap.cfg.clampPriority(p.Priority),
				Cached:   true,
			})
			return
		}
	}

	admitStart := time.Now()
	if err := s.adm.Acquire(snap.cfg, p.Tenant, p.DeadlineMS); err != nil {
		if prof != nil {
			wait := time.Since(admitStart)
			prof.QueueWaitNs = uint64(wait)
			prof.Stage("admission", wait)
		}
		s.reject(w, snap.cfg, err, qid, prof, p, qStart)
		return
	}
	queueWait := time.Since(admitStart)
	if s.rec != nil {
		s.rec.Histogram(QueueWaitHistogram).Observe(uint64(queueWait.Nanoseconds()))
	}
	if prof != nil {
		prof.QueueWaitNs = uint64(queueWait)
		prof.Stage("admission", queueWait)
	}
	defer s.adm.ReleaseTenant(p.Tenant)
	// releaseSlot frees the in-flight slot exactly once, reading the
	// *latest* config so a raised limit drains the queue at the new
	// width. Shared-scan enrollment calls it early (admission →
	// enrollment handoff): an enrolled query's work belongs to the
	// coordinator's cooperative pass, so holding its slot would cap the
	// batch at MaxInFlight instead of letting the queue drain into it.
	released := false
	releaseSlot := func() {
		if !released {
			released = true
			s.adm.Release(s.snap.Load().cfg)
		}
	}
	defer releaseSlot()

	qrt := s.rt.WithPriority(snap.cfg.clampPriority(p.Priority))
	ctx := obs.ContextWithProfile(r.Context(), prof)
	execStart := time.Now()
	result, shared, err := s.executeMaybeShared(ctx, snap, ds, p, qrt, releaseSlot)
	if prof != nil {
		prof.Stage("execute", time.Since(execStart))
	}
	if err != nil {
		// Post-admission failures are server-side: the plan validated but
		// execution rejected it (e.g. unknown column) — report 422 for
		// plan-shaped issues, which keeps the "zero 5xx" load gate
		// meaningful for real internal failures.
		s.failQuery(w, http.StatusUnprocessableEntity, err, qid, prof, "error", p.Tenant, string(p.Op), qStart)
		return
	}
	if cacheable {
		s.cache.put(key, result, snap.cfg.CacheEntries)
	}
	wall := time.Since(qStart)
	if s.rec != nil {
		s.rec.Histogram(QueryHistogram).Observe(uint64(wall.Nanoseconds()))
		s.rec.Histogram(QueryHistogram + "." + string(p.Op)).Observe(uint64(wall.Nanoseconds()))
	}
	s.observeTenant(p.Tenant, string(p.Op), wall, false)
	s.finishProfile(prof, "ok", http.StatusOK)
	s.served.Add(1)
	resp := queryResponse{
		Op:       string(p.Op),
		Dataset:  p.Dataset,
		QueryID:  qid,
		Result:   result,
		WallMS:   float64(wall.Nanoseconds()) / 1e6,
		Priority: qrt.Priority(),
		Shared:   shared,
	}
	if p.Explain {
		resp.Profile = prof
	}
	writeJSON(w, http.StatusOK, resp)
}

// maybeProfile decides sampling for one request: explain always
// profiles, otherwise every Nth query per the configured rate (0 = off).
// The profile's wall clock is backdated to the request arrival.
func (s *Server) maybeProfile(cfg Config, explain bool, id uint64, start time.Time) *obs.QueryProfile {
	if explain {
		return obs.NewQueryProfileAt(id, start)
	}
	n := cfg.ProfileSample
	if n <= 0 || s.sampleCtr.Add(1)%uint64(n) != 0 {
		return nil
	}
	return obs.NewQueryProfileAt(id, start)
}

// finishProfile finalizes a profile and publishes it to the slow-query
// log. Nil-safe: unsampled requests pay one branch.
func (s *Server) finishProfile(prof *obs.QueryProfile, status string, httpStatus int) {
	if prof == nil {
		return
	}
	prof.Finalize(status, httpStatus)
	s.slowlog.Observe(prof)
}

// observeTenant records the always-on per-tenant RED observation. Every
// terminal outcome — served, cached, shed, failed — lands here exactly
// once, so the tenant series agree with the admission and error
// counters regardless of profile sampling.
func (s *Server) observeTenant(tenant, op string, d time.Duration, isErr bool) {
	if s.rec != nil {
		s.rec.Tenants().Observe(tenant, op, d, isErr)
	}
}

// failQuery is fail for requests that have a query ID: it finalizes the
// profile (when sampled) with the given status so error paths appear in
// the slow-query log, and records the RED error observation.
func (s *Server) failQuery(w http.ResponseWriter, status int, err error, qid uint64, prof *obs.QueryProfile, profStatus, tenant, op string, start time.Time) {
	if status >= 500 {
		s.errs5xx.Add(1)
	} else {
		s.errs4xx.Add(1)
	}
	if prof != nil {
		prof.Error = err.Error()
	}
	s.finishProfile(prof, profStatus, status)
	s.observeTenant(tenant, op, time.Since(start), true)
	writeJSON(w, status, errorResponse{Error: err.Error(), QueryID: qid})
}

// executeMaybeShared routes an eligible plan through the shared-scan
// coordinator when the adaptive score says a cooperative pass beats the
// query's own zone-pruned scan at the current concurrency estimate, and
// falls through to independent execution otherwise. The estimate is the
// coordinator's live enrollment plus the larger of the admission
// backlog and the recent-arrival count: the census sees a standing
// queue (many-core hosts), the arrival window sees concurrency the OS
// serializes before admission (few-core hosts) — either way it reflects
// the batch one wraparound would serve. For a solo query both halves
// are 1 and the score always bypasses.
func (s *Server) executeMaybeShared(ctx context.Context, snap *snapshot, ds *Dataset, p *plan.Plan, qrt *rts.Runtime, handoff func()) (any, bool, error) {
	prof := obs.ProfileFromContext(ctx)
	tableOp := ds.Table != nil && (p.Op == plan.OpAggregate || p.Op == plan.OpGroupBy)
	if snap.cfg.SharedScan && tableOp {
		sc := s.shared.scanner(ds.Table, s.rt)
		adm := s.adm.Stats()
		census := adm.InFlight + adm.Queued
		// Only predicated plans note an arrival: unpredicated ones never
		// enroll, so they must not count as potential batch mates.
		if len(p.Preds) > 0 {
			if recent := sc.noteArrival(time.Now()); recent > census {
				census = recent
			}
		}
		est := sc.population() + census
		if _, enroll := decideEnroll(ds.Table, p, est); enroll {
			handoff()
			res, err := sc.submit(planScanQuery(p), planKey(p), qrt.Priority(), snap.cfg.sharedSegments(), prof)
			if err != nil {
				return nil, true, err
			}
			return wireScanResult(p, res), true, nil
		}
		s.shared.bypassed.Add(1)
		prof.NoteShared(obs.SharedBypassed, 0, 0)
		if len(p.Preds) > 0 {
			// A bypassed predicated scan costs about one wraparound —
			// feed its latency back as the arrival-window seed.
			start := time.Now()
			result, err := execute(ctx, qrt, ds, p)
			sc.noteIndependent(time.Since(start))
			return result, false, err
		}
	}
	if tableOp && prof != nil && prof.Shared == nil {
		// An otherwise shareable table op ran with the coordinator
		// disabled — distinct from a bypass decision.
		prof.NoteShared(obs.SharedOff, 0, 0)
	}
	result, err := execute(ctx, qrt, ds, p)
	return result, false, err
}

// wireScanResult converts a shared-scan result into the same wire form
// independent execution produces.
func wireScanResult(p *plan.Plan, res colstore.ScanResult) any {
	if p.Op == plan.OpAggregate {
		return AggregateResult{Value: res.Value}
	}
	groups := make([]GroupResult, len(res.Groups))
	for i, r := range res.Groups {
		groups[i] = GroupResult{Key: r.Key, Value: r.Value}
	}
	return GroupByResult{Groups: groups}
}

// reject maps admission errors onto 429 with a Retry-After hint. A
// sampled rejection still emits a (minimal) profile whose status names
// the shed reason, so the slow-query log and tenant error series agree
// with the admission counters.
func (s *Server) reject(w http.ResponseWriter, cfg Config, err error, qid uint64, prof *obs.QueryProfile, p *plan.Plan, start time.Time) {
	s.errs4xx.Add(1)
	// Both shed and expired queries should back off about one queue
	// drain; the timeout is the honest upper bound.
	w.Header().Set("Retry-After", fmt.Sprintf("%d", (cfg.QueueTimeoutMS+999)/1000))
	status := "shed"
	if errors.Is(err, ErrDeadline) {
		status = "expired"
	}
	if prof != nil {
		prof.Error = err.Error()
	}
	s.finishProfile(prof, status, http.StatusTooManyRequests)
	s.observeTenant(p.Tenant, string(p.Op), time.Since(start), true)
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), QueryID: qid})
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.errs5xx.Add(1)
	} else {
		s.errs4xx.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	metas := make([]Meta, 0, len(snap.datasets))
	for _, d := range snap.datasets {
		metas = append(metas, d.Meta())
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": metas})
}

// statsResponse is the /stats wire form: admission counters plus the
// served-query latency quantiles from the obs histogram.
type statsResponse struct {
	Admission  AdmissionStats  `json:"admission"`
	Cache      CacheStats      `json:"cache"`
	SharedScan SharedScanStats `json:"shared_scan"`
	Served     uint64          `json:"served"`
	Errors4xx  uint64          `json:"errors_4xx"`
	Errors5xx  uint64          `json:"errors_5xx"`
	// ActiveLoops is the scheduler's in-flight loop count at snapshot
	// time — the executor-level view of concurrency, alongside the
	// admission-level in_flight.
	ActiveLoops int               `json:"active_loops"`
	LatencyMS   *latencyQuantiles `json:"latency_ms,omitempty"`
	// QueueWaitMS quantifies admission delay (arrival to in-flight slot)
	// for admitted queries — the queue-pressure signal that precedes 429s.
	QueueWaitMS *latencyQuantiles `json:"queue_wait_ms,omitempty"`
	// SharedBatch is the distribution of queries served per cooperative
	// segment pass (raw batch sizes, not milliseconds) — the "how much
	// sharing actually happens" signal behind shared_scan's counters.
	SharedBatch *countQuantiles `json:"shared_batch,omitempty"`
	// Tenants is the per-tenant × per-op RED/SLO series (also exported
	// in Prometheus form at /metrics).
	Tenants []obs.TenantOpSnapshot `json:"tenants,omitempty"`
}

type latencyQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// countQuantiles is a count-valued distribution (batch sizes), kept
// distinct from latencyQuantiles so the units are unambiguous on the
// wire.
type countQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Admission:   s.adm.Stats(),
		Cache:       s.cache.stats(),
		SharedScan:  s.shared.Stats(),
		Served:      s.served.Load(),
		Errors4xx:   s.errs4xx.Load(),
		Errors5xx:   s.errs5xx.Load(),
		ActiveLoops: s.sched.ActiveLoops(),
	}
	if s.rec != nil {
		resp.LatencyMS = quantilesOf(s.rec.Histogram(QueryHistogram).Snapshot())
		resp.QueueWaitMS = quantilesOf(s.rec.Histogram(QueueWaitHistogram).Snapshot())
		resp.SharedBatch = countQuantilesOf(s.rec.Histogram(SharedBatchHistogram).Snapshot())
		resp.Tenants = s.rec.Tenants().Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSlowlog serves the retained profile rings: threshold, counts,
// top-K slowest, and the slow ring sorted slowest-first.
func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.slowlog.Snapshot())
}

// handleQueryLookup serves one retained profile by ID
// (/debug/query/<id>). 404 means the query was never sampled or has
// been evicted from the rings.
func (s *Server) handleQueryLookup(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/query/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("queryd: bad query id %q", idStr))
		return
	}
	prof := s.slowlog.Lookup(id)
	if prof == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("queryd: no retained profile for query %d", id))
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

// quantilesOf converts a histogram snapshot to wire quantiles (nil when
// empty, so the field is omitted).
func quantilesOf(snap obs.HistogramSnapshot) *latencyQuantiles {
	if snap.Count == 0 {
		return nil
	}
	return &latencyQuantiles{
		Count: snap.Count,
		P50:   snap.Quantile(0.50) / 1e6,
		P95:   snap.Quantile(0.95) / 1e6,
		P99:   snap.Quantile(0.99) / 1e6,
	}
}

// countQuantilesOf converts a count-valued histogram snapshot to wire
// quantiles (nil when empty).
func countQuantilesOf(snap obs.HistogramSnapshot) *countQuantiles {
	if snap.Count == 0 {
		return nil
	}
	return &countQuantiles{
		Count: snap.Count,
		P50:   snap.Quantile(0.50),
		P95:   snap.Quantile(0.95),
		P99:   snap.Quantile(0.99),
	}
}

// controlRequest is the POST /control/config wire form: a full new config
// (partial updates are a footgun with atomic swaps) plus datasets to add.
type controlRequest struct {
	Config   *Config       `json:"config"`
	Datasets []DatasetSpec `json:"datasets"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Config())
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody))
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		var req controlRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		if req.Config != nil {
			if err := s.SwapConfig(*req.Config); err != nil {
				s.fail(w, http.StatusBadRequest, err)
				return
			}
		}
		for _, spec := range req.Datasets {
			if err := s.AddDataset(spec); err != nil {
				s.fail(w, http.StatusBadRequest, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, s.Config())
	default:
		s.fail(w, http.StatusMethodNotAllowed, errors.New("queryd: GET or POST"))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
