// Package queryd is the query-service data plane: a stdlib HTTP+JSON
// front end that serves colstore aggregations and graph kernels
// concurrently over one smart-array runtime.
//
// Architecture (the control-plane/data-plane split):
//
//   - Data plane: POST /query parses a plan, passes admission control,
//     and executes on a priority-tagged runtime view. Concurrency comes
//     from the rts.Scheduler — every in-flight query's loops are
//     multiplexed onto the shared worker pool at batch granularity, so a
//     cheap high-priority aggregate overtakes a long PageRank instead of
//     queueing behind it. The hot path takes no lock: configuration and
//     the dataset catalog are read through one atomic snapshot pointer.
//   - Control plane: GET/POST /control/config reads and replaces the
//     admission/quota configuration (and can materialize new datasets);
//     changes build a fresh immutable snapshot offline and swap it in
//     atomically. The obs/serve introspection endpoints (/metrics,
//     /arrays, /trace, /decisions) mount on the same server.
//
// Endpoints:
//
//	POST /query           run one query (JSON body, see internal/queryd/plan)
//	GET  /healthz         liveness
//	GET  /datasets        dataset catalog with column checksums
//	GET  /stats           admission + latency statistics (JSON)
//	GET  /control/config  current admission/quota config
//	POST /control/config  swap config (and optionally add datasets)
//	GET  /metrics ...     obs/serve introspection (same mux)
package queryd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smartarrays/internal/colstore"
	"smartarrays/internal/obs"
	"smartarrays/internal/obs/serve"
	"smartarrays/internal/queryd/plan"
	"smartarrays/internal/rts"
)

// QueryHistogram is the recorder histogram receiving one end-to-end
// observation per served query (admission wait included); per-op
// histograms are named QueryHistogram + "." + op.
const QueryHistogram = "queryd.query"

// QueueWaitHistogram is the recorder histogram receiving one admission
// delay observation per admitted query — how long it sat between arrival
// and holding an in-flight slot. /stats surfaces its quantiles next to
// in_flight/queued, so queue pressure is visible before it becomes 429s.
const QueueWaitHistogram = "queryd.queue_wait"

// Server is the query service. Create with NewServer, then Start (or
// mount Handler under a test server).
type Server struct {
	rt    *rts.Runtime
	sched *rts.Scheduler
	rec   *obs.Recorder
	reg   *obs.ArrayRegistry

	// snap is the immutable config+catalog snapshot; the data plane loads
	// it exactly once per request.
	snap atomic.Pointer[snapshot]
	// ctlMu serializes control-plane writers (snapshot swaps); readers
	// never take it.
	ctlMu sync.Mutex

	adm *admission

	// cache is the bounded result LRU (see cache.go). Always allocated;
	// the capacity in the current snapshot's config decides whether it is
	// consulted, so a config swap can turn caching on or off live.
	cache *resultCache

	// shared is the shared-scan coordinator (see sharedscan.go). Always
	// allocated; the current snapshot's config decides whether eligible
	// queries consult it, so a swap can turn sharing on or off live
	// (in-flight waves simply drain).
	shared *sharedExec

	// served counts successfully executed queries; errs5xx counts
	// internal failures (the load gate requires this to stay zero).
	served  atomic.Uint64
	errs4xx atomic.Uint64
	errs5xx atomic.Uint64
}

// NewServer builds a server over rt. It attaches a scheduler to rt
// (taking ownership of loop execution — do not run exclusive-mode
// benchmarks on the same runtime afterwards), and registers the initial
// datasets. rec and reg may be nil to serve without telemetry.
func NewServer(rt *rts.Runtime, cfg Config, specs []DatasetSpec, rec *obs.Recorder, reg *obs.ArrayRegistry) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{rt: rt, rec: rec, reg: reg, adm: newAdmission(), cache: newResultCache(), shared: newSharedExec(rec)}

	// Datasets are built before the scheduler attaches: initialization
	// wants the exclusive loop engine's first-touch determinism.
	datasets := make(map[string]*Dataset, len(specs))
	for _, spec := range specs {
		if _, dup := datasets[spec.Name]; dup {
			return nil, fmt.Errorf("queryd: duplicate dataset %q", spec.Name)
		}
		d, err := BuildDataset(rt, spec)
		if err != nil {
			return nil, err
		}
		datasets[spec.Name] = d
	}
	snap := &snapshot{cfg: cfg, datasets: datasets}
	s.snap.Store(snap)

	s.sched = rts.NewScheduler(rt)
	rt.SetScheduler(s.sched)
	return s, nil
}

// Close shuts the scheduler down. The HTTP listener must be closed first
// (Start's stop function does both, in order).
func (s *Server) Close() {
	s.sched.Close()
}

// Runtime returns the serving runtime (tests use it for direct-call
// comparisons; its loops go through the scheduler too, so calls are safe
// while serving).
func (s *Server) Runtime() *rts.Runtime { return s.rt }

// Dataset resolves a dataset from the current snapshot.
func (s *Server) Dataset(name string) (*Dataset, error) {
	return s.snap.Load().dataset(name)
}

// Config returns the current admission configuration.
func (s *Server) Config() Config {
	return s.snap.Load().cfg
}

// SharedStats snapshots the shared-scan coordinator counters.
func (s *Server) SharedStats() SharedScanStats {
	return s.shared.Stats()
}

// SwapConfig validates and atomically installs a new configuration,
// keeping the existing dataset catalog, then kicks the admission queue so
// raised limits take effect immediately.
func (s *Server) SwapConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.ctlMu.Lock()
	old := s.snap.Load()
	s.snap.Store(&snapshot{cfg: cfg, datasets: old.datasets, version: old.version + 1})
	s.ctlMu.Unlock()
	s.adm.Kick(cfg)
	return nil
}

// AddDataset materializes spec and installs it in a fresh snapshot. The
// build runs through the scheduler like any other work, so serving
// continues meanwhile; the new dataset becomes visible atomically.
func (s *Server) AddDataset(spec DatasetSpec) error {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if _, exists := s.snap.Load().datasets[spec.Name]; exists {
		return fmt.Errorf("queryd: dataset %q already exists", spec.Name)
	}
	d, err := BuildDataset(s.rt, spec)
	if err != nil {
		return err
	}
	old := s.snap.Load()
	datasets := make(map[string]*Dataset, len(old.datasets)+1)
	for k, v := range old.datasets {
		datasets[k] = v
	}
	datasets[spec.Name] = d
	s.snap.Store(&snapshot{cfg: old.cfg, datasets: datasets, version: old.version + 1})
	return nil
}

// Handler returns the full mux: data plane, control plane, and the
// obs/serve introspection endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/control/config", s.handleConfig)
	if s.rec != nil {
		intro := serve.New(s.rec, s.reg).Handler()
		for _, path := range []string{"/metrics", "/arrays", "/trace", "/decisions"} {
			mux.Handle(path, intro)
		}
	}
	return mux
}

// Start binds addr (":0" picks a free port), serves in the background,
// and returns the bound address plus a stop function that closes the
// listener and then the scheduler.
func (s *Server) Start(addr string) (string, func() error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("queryd: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(l) }()
	stop := func() error {
		err := srv.Close()
		s.Close()
		return err
	}
	return l.Addr().String(), stop, nil
}

// queryResponse is the /query wire envelope.
type queryResponse struct {
	Op       string  `json:"op"`
	Dataset  string  `json:"dataset"`
	Result   any     `json:"result"`
	WallMS   float64 `json:"wall_ms"`
	Priority int     `json:"priority"`
	// Cached marks a result served from the result cache (the query
	// skipped admission and execution entirely).
	Cached bool `json:"cached,omitempty"`
	// Shared marks a result computed by a cooperative shared-scan pass
	// (enrolled or coalesced) rather than an independent scan.
	Shared bool `json:"shared,omitempty"`
}

// errorResponse is the error wire envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// maxQueryBody bounds request bodies; plans are small.
const maxQueryBody = 1 << 20

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, errors.New("queryd: POST a query JSON body"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	p, err := plan.Parse(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// One snapshot load; the rest of the request sees a consistent
	// config+catalog no matter how many swaps land meanwhile.
	snap := s.snap.Load()
	ds, err := snap.dataset(p.Dataset)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}

	// Cache lookup runs before admission: a hit costs two map operations
	// and skips the queue entirely, which is where the repeated-query
	// throughput win comes from. The key embeds the snapshot version and
	// the touched columns' generations, so a stale entry is unreachable
	// by construction. start is taken before the lookup so the latency
	// histogram covers hits too.
	start := time.Now()
	var key string
	cacheable := false
	if snap.cfg.CacheEntries > 0 {
		key, cacheable = cacheKey(snap, ds, p)
		if cacheable {
			if result, ok := s.cache.get(key); ok {
				wall := time.Since(start)
				if s.rec != nil {
					s.rec.Histogram(QueryHistogram).Observe(uint64(wall.Nanoseconds()))
					s.rec.Histogram(QueryHistogram + "." + string(p.Op)).Observe(uint64(wall.Nanoseconds()))
				}
				s.served.Add(1)
				writeJSON(w, http.StatusOK, queryResponse{
					Op:       string(p.Op),
					Dataset:  p.Dataset,
					Result:   result,
					WallMS:   float64(wall.Nanoseconds()) / 1e6,
					Priority: snap.cfg.clampPriority(p.Priority),
					Cached:   true,
				})
				return
			}
		}
	}

	admitStart := time.Now()
	if err := s.adm.Acquire(snap.cfg, p.Tenant, p.DeadlineMS); err != nil {
		s.reject(w, snap.cfg, err)
		return
	}
	if s.rec != nil {
		s.rec.Histogram(QueueWaitHistogram).ObserveSince(admitStart)
	}
	defer s.adm.ReleaseTenant(p.Tenant)
	// releaseSlot frees the in-flight slot exactly once, reading the
	// *latest* config so a raised limit drains the queue at the new
	// width. Shared-scan enrollment calls it early (admission →
	// enrollment handoff): an enrolled query's work belongs to the
	// coordinator's cooperative pass, so holding its slot would cap the
	// batch at MaxInFlight instead of letting the queue drain into it.
	released := false
	releaseSlot := func() {
		if !released {
			released = true
			s.adm.Release(s.snap.Load().cfg)
		}
	}
	defer releaseSlot()

	qrt := s.rt.WithPriority(snap.cfg.clampPriority(p.Priority))
	result, shared, err := s.executeMaybeShared(snap, ds, p, qrt, releaseSlot)
	if err != nil {
		// Post-admission failures are server-side: the plan validated but
		// execution rejected it (e.g. unknown column) — report 422 for
		// plan-shaped issues, which keeps the "zero 5xx" load gate
		// meaningful for real internal failures.
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	if cacheable {
		s.cache.put(key, result, snap.cfg.CacheEntries)
	}
	wall := time.Since(start)
	if s.rec != nil {
		s.rec.Histogram(QueryHistogram).Observe(uint64(wall.Nanoseconds()))
		s.rec.Histogram(QueryHistogram + "." + string(p.Op)).Observe(uint64(wall.Nanoseconds()))
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, queryResponse{
		Op:       string(p.Op),
		Dataset:  p.Dataset,
		Result:   result,
		WallMS:   float64(wall.Nanoseconds()) / 1e6,
		Priority: qrt.Priority(),
		Shared:   shared,
	})
}

// executeMaybeShared routes an eligible plan through the shared-scan
// coordinator when the adaptive score says a cooperative pass beats the
// query's own zone-pruned scan at the current concurrency estimate, and
// falls through to independent execution otherwise. The estimate is the
// coordinator's live enrollment plus the larger of the admission
// backlog and the recent-arrival count: the census sees a standing
// queue (many-core hosts), the arrival window sees concurrency the OS
// serializes before admission (few-core hosts) — either way it reflects
// the batch one wraparound would serve. For a solo query both halves
// are 1 and the score always bypasses.
func (s *Server) executeMaybeShared(snap *snapshot, ds *Dataset, p *plan.Plan, qrt *rts.Runtime, handoff func()) (any, bool, error) {
	if snap.cfg.SharedScan && ds.Table != nil && (p.Op == plan.OpAggregate || p.Op == plan.OpGroupBy) {
		sc := s.shared.scanner(ds.Table, s.rt)
		adm := s.adm.Stats()
		census := adm.InFlight + adm.Queued
		// Only predicated plans note an arrival: unpredicated ones never
		// enroll, so they must not count as potential batch mates.
		if len(p.Preds) > 0 {
			if recent := sc.noteArrival(time.Now()); recent > census {
				census = recent
			}
		}
		est := sc.population() + census
		if _, enroll := decideEnroll(ds.Table, p, est); enroll {
			handoff()
			res, err := sc.submit(planScanQuery(p), planKey(p), qrt.Priority(), snap.cfg.sharedSegments())
			if err != nil {
				return nil, true, err
			}
			return wireScanResult(p, res), true, nil
		}
		s.shared.bypassed.Add(1)
		if len(p.Preds) > 0 {
			// A bypassed predicated scan costs about one wraparound —
			// feed its latency back as the arrival-window seed.
			start := time.Now()
			result, err := execute(qrt, ds, p)
			sc.noteIndependent(time.Since(start))
			return result, false, err
		}
	}
	result, err := execute(qrt, ds, p)
	return result, false, err
}

// wireScanResult converts a shared-scan result into the same wire form
// independent execution produces.
func wireScanResult(p *plan.Plan, res colstore.ScanResult) any {
	if p.Op == plan.OpAggregate {
		return AggregateResult{Value: res.Value}
	}
	groups := make([]GroupResult, len(res.Groups))
	for i, r := range res.Groups {
		groups[i] = GroupResult{Key: r.Key, Value: r.Value}
	}
	return GroupByResult{Groups: groups}
}

// reject maps admission errors onto 429 with a Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, cfg Config, err error) {
	s.errs4xx.Add(1)
	// Both shed and expired queries should back off about one queue
	// drain; the timeout is the honest upper bound.
	w.Header().Set("Retry-After", fmt.Sprintf("%d", (cfg.QueueTimeoutMS+999)/1000))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.errs5xx.Add(1)
	} else {
		s.errs4xx.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	metas := make([]Meta, 0, len(snap.datasets))
	for _, d := range snap.datasets {
		metas = append(metas, d.Meta())
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": metas})
}

// statsResponse is the /stats wire form: admission counters plus the
// served-query latency quantiles from the obs histogram.
type statsResponse struct {
	Admission  AdmissionStats  `json:"admission"`
	Cache      CacheStats      `json:"cache"`
	SharedScan SharedScanStats `json:"shared_scan"`
	Served     uint64          `json:"served"`
	Errors4xx  uint64          `json:"errors_4xx"`
	Errors5xx  uint64          `json:"errors_5xx"`
	// ActiveLoops is the scheduler's in-flight loop count at snapshot
	// time — the executor-level view of concurrency, alongside the
	// admission-level in_flight.
	ActiveLoops int               `json:"active_loops"`
	LatencyMS   *latencyQuantiles `json:"latency_ms,omitempty"`
	// QueueWaitMS quantifies admission delay (arrival to in-flight slot)
	// for admitted queries — the queue-pressure signal that precedes 429s.
	QueueWaitMS *latencyQuantiles `json:"queue_wait_ms,omitempty"`
}

type latencyQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Admission:   s.adm.Stats(),
		Cache:       s.cache.stats(),
		SharedScan:  s.shared.Stats(),
		Served:      s.served.Load(),
		Errors4xx:   s.errs4xx.Load(),
		Errors5xx:   s.errs5xx.Load(),
		ActiveLoops: s.sched.ActiveLoops(),
	}
	if s.rec != nil {
		resp.LatencyMS = quantilesOf(s.rec.Histogram(QueryHistogram).Snapshot())
		resp.QueueWaitMS = quantilesOf(s.rec.Histogram(QueueWaitHistogram).Snapshot())
	}
	writeJSON(w, http.StatusOK, resp)
}

// quantilesOf converts a histogram snapshot to wire quantiles (nil when
// empty, so the field is omitted).
func quantilesOf(snap obs.HistogramSnapshot) *latencyQuantiles {
	if snap.Count == 0 {
		return nil
	}
	return &latencyQuantiles{
		Count: snap.Count,
		P50:   snap.Quantile(0.50) / 1e6,
		P95:   snap.Quantile(0.95) / 1e6,
		P99:   snap.Quantile(0.99) / 1e6,
	}
}

// controlRequest is the POST /control/config wire form: a full new config
// (partial updates are a footgun with atomic swaps) plus datasets to add.
type controlRequest struct {
	Config   *Config       `json:"config"`
	Datasets []DatasetSpec `json:"datasets"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Config())
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody))
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		var req controlRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		if req.Config != nil {
			if err := s.SwapConfig(*req.Config); err != nil {
				s.fail(w, http.StatusBadRequest, err)
				return
			}
		}
		for _, spec := range req.Datasets {
			if err := s.AddDataset(spec); err != nil {
				s.fail(w, http.StatusBadRequest, err)
				return
			}
		}
		writeJSON(w, http.StatusOK, s.Config())
	default:
		s.fail(w, http.StatusMethodNotAllowed, errors.New("queryd: GET or POST"))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
