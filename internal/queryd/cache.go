// Result cache for the query service: a bounded LRU over executed query
// results, keyed on the canonical plan plus every version counter that
// could change the answer — the catalog snapshot version and, for table
// queries, the generation of each touched column's smart array. Staleness
// never needs an explicit invalidation pass: a control-plane swap bumps
// the snapshot version and a Reencode/Init bumps the array generation, so
// stale entries simply stop being addressable and age out of the LRU.
package queryd

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"smartarrays/internal/queryd/plan"
)

// resultCache is a mutex-guarded LRU. The lock covers only map+list
// bookkeeping (no execution happens under it); cached results are
// immutable wire structs shared by reference.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key    string
	result any
}

func newResultCache() *resultCache {
	return &resultCache{entries: map[string]*list.Element{}, lru: list.New()}
}

// get returns the cached result for key, refreshing its LRU position.
func (c *resultCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).result, true
}

// put inserts (or refreshes) key under the given capacity, evicting from
// the LRU tail. Capacity is passed per call because it lives in the
// atomically-swapped config snapshot: a shrunk limit takes effect on the
// next insert without a resize pass.
func (c *resultCache) put(key string, result any, capacity int) {
	if capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = result
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, result: result})
	for c.lru.Len() > capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// CacheStats is the /stats wire form of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// cacheKey canonicalizes p into a cache key, or reports that the query is
// uncacheable (unknown columns are left for the executor to reject).
// Admission metadata (priority, tenant, deadline) is deliberately
// excluded: it shapes scheduling, never the result. Predicates are sorted
// because conjunctions commute. Each table column is keyed as
// name@generation so any representation or content revision makes every
// dependent entry unreachable.
func cacheKey(snap *snapshot, ds *Dataset, p *plan.Plan) (string, bool) {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|%s|%s", snap.version, p.Dataset, p.Op)
	colKey := func(name string) bool {
		if ds.Table == nil {
			return false
		}
		col, err := ds.Table.Column(name)
		if err != nil {
			return false
		}
		fmt.Fprintf(&b, "|%s@%d", name, col.Array().Generation())
		return true
	}
	switch p.Op {
	case plan.OpAggregate, plan.OpGroupBy:
		fmt.Fprintf(&b, "|agg%d", int(p.Agg))
		if !colKey(p.Column) {
			return "", false
		}
		if p.Op == plan.OpGroupBy {
			b.WriteString("|key")
			if !colKey(p.Key) {
				return "", false
			}
		}
		var preds []string
		for _, pr := range p.Preds {
			var pb strings.Builder
			fmt.Fprintf(&pb, "|w:%s@", pr.Column)
			col, err := ds.Table.Column(pr.Column)
			if err != nil {
				return "", false
			}
			fmt.Fprintf(&pb, "%d:%d:%d", col.Array().Generation(), int(pr.Op), pr.Value)
			preds = append(preds, pb.String())
		}
		sort.Strings(preds)
		for _, s := range preds {
			b.WriteString(s)
		}
	case plan.OpPageRank:
		fmt.Fprintf(&b, "|iters%d", p.Iters)
	case plan.OpBFS:
		fmt.Fprintf(&b, "|src%d", p.Source)
	case plan.OpDegree:
		// op alone identifies it
	default:
		return "", false
	}
	return b.String(), true
}
