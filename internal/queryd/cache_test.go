package queryd

import (
	"encoding/json"
	"net/http"
	"testing"

	"smartarrays/internal/encoding"
)

// TestResultCacheLRU unit-tests the LRU mechanics: bound respected,
// least-recently-used entry evicted first, counters accurate.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache()
	c.put("a", 1, 2)
	c.put("b", 2, 2)
	if _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", 3, 2) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits 1 miss", st)
	}
	// Capacity 0 means off: put is a no-op.
	c2 := newResultCache()
	c2.put("x", 1, 0)
	if _, ok := c2.get("x"); ok {
		t.Fatal("capacity 0 cached an entry")
	}
}

// cachedFlag extracts the "cached" field of a /query response envelope
// (absent means false — the flag is omitempty).
func cachedFlag(t *testing.T, env map[string]json.RawMessage) bool {
	t.Helper()
	raw, ok := env["cached"]
	if !ok {
		return false
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQueryCacheHitsRepeatedQueries checks the serving behavior: the
// first execution misses, the identical repeat hits (bit-identical
// result, cached flag set, admission skipped), and commuted predicate
// order hits the same entry.
func TestQueryCacheHitsRepeatedQueries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 64
	srv, ts := newTestServer(t, cfg)

	body := map[string]any{
		"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount",
		"where": []map[string]any{
			{"column": "flag", "op": "=", "value": 1},
			{"column": "region", "op": "<", "value": 8},
		},
	}
	status, env1 := postQuery(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, env1["error"])
	}
	if cachedFlag(t, env1) {
		t.Fatal("first execution claimed a cache hit")
	}
	status, env2 := postQuery(t, ts, body)
	if status != http.StatusOK || !cachedFlag(t, env2) {
		t.Fatalf("repeat not served from cache (status %d)", status)
	}
	if string(env1["result"]) != string(env2["result"]) {
		t.Fatalf("cached result %s != executed %s", env2["result"], env1["result"])
	}

	// Same conjunction, commuted order: must hit the same entry.
	body["where"] = []map[string]any{
		{"column": "region", "op": "<", "value": 8},
		{"column": "flag", "op": "=", "value": 1},
	}
	if _, env3 := postQuery(t, ts, body); !cachedFlag(t, env3) {
		t.Fatal("commuted predicates missed the cache")
	}

	st := srv.cache.stats()
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("cache stats = %+v, want >=2 hits >=1 miss", st)
	}
}

// TestQueryCacheStaleNeverServes pins the invalidation contract: any
// event that can change an answer — a control-plane swap or a column
// re-encode (generation bump) — makes old entries unreachable.
func TestQueryCacheStaleNeverServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheEntries = 64
	srv, ts := newTestServer(t, cfg)
	body := map[string]any{"dataset": "demo", "op": "aggregate", "agg": "sum", "column": "amount"}

	postQuery(t, ts, body)
	if _, env := postQuery(t, ts, body); !cachedFlag(t, env) {
		t.Fatal("warm-up repeat did not hit")
	}

	// Config swap bumps the snapshot version: next query must re-execute.
	if err := srv.SwapConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if _, env := postQuery(t, ts, body); cachedFlag(t, env) {
		t.Fatal("cache served across a config swap")
	}
	if _, env := postQuery(t, ts, body); !cachedFlag(t, env) {
		t.Fatal("cache did not repopulate after the swap")
	}

	// Re-encoding the target column bumps its generation: the entry keyed
	// on the old generation must never serve again.
	ds, err := srv.Dataset("demo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Table.ReencodeColumn("amount", encoding.FoR, 0); err != nil {
		t.Fatal(err)
	}
	_, env := postQuery(t, ts, body)
	if cachedFlag(t, env) {
		t.Fatal("cache served a result for a re-encoded column")
	}

	// AddDataset bumps the version too; existing entries go stale but the
	// recomputed answer must still be correct (values were preserved).
	if err := srv.AddDataset(DatasetSpec{Name: "tiny", Rows: 100}); err != nil {
		t.Fatal(err)
	}
	status, env2 := postQuery(t, ts, body)
	if status != http.StatusOK || cachedFlag(t, env2) {
		t.Fatalf("post-AddDataset query: status %d cached %v", status, cachedFlag(t, env2))
	}
	if string(env["result"]) != string(env2["result"]) {
		t.Fatalf("recomputed result drifted: %s != %s", env["result"], env2["result"])
	}
}

// TestQueryCacheOffByDefault pins that DefaultConfig leaves caching off:
// repeats re-execute and the cached flag never appears.
func TestQueryCacheOffByDefault(t *testing.T) {
	srv, ts := newTestServer(t, DefaultConfig())
	body := map[string]any{"dataset": "demo", "op": "degree"}
	postQuery(t, ts, body)
	if _, env := postQuery(t, ts, body); cachedFlag(t, env) {
		t.Fatal("cache served with CacheEntries = 0")
	}
	if st := srv.cache.stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache touched: %+v", st)
	}
}
