package adapt

import (
	"fmt"
	"sync"
	"time"

	"smartarrays/internal/core"
	"smartarrays/internal/encoding"
	"smartarrays/internal/obs"
	"smartarrays/internal/perfmodel"
)

// Representation drift: the Monitor re-walks §6's placement/compression
// diagrams, but the encoding zoo adds a second adaptation axis — which
// codec the array's chunks decode through. The measured inputs are the
// same per-array telemetry (random share, chunk-decode share, reads per
// element, selectivity); the scoring is the per-codec perfmodel entries
// weighted by the observed access-method mix. A Reencoder watches live
// arrays, re-scores the codec pick against that mix, and migrates an
// array in place (core.SmartArray.Reencode) when the measured pattern
// flips it — e.g. a clustered column that drifts from run-skipping scans
// to random gets migrates RLE → bit-packed, because RLE's fold advantage
// inverts into a per-Get seek penalty.

// DefaultReencodeHysteresis is the modeled-cost advantage a challenger
// representation must show before a migration is worth its traffic.
const DefaultReencodeHysteresis = 1.15

// ReencoderConfig sets up a live representation re-scorer.
type ReencoderConfig struct {
	// Name labels the workload in reencode events.
	Name string
	// Arrays is the telemetry registry profiles are pulled from.
	Arrays *obs.ArrayRegistry
	// Candidates are the representations considered (default: every kind
	// in encoding.Kinds).
	Candidates []encoding.Kind
	// Hysteresis is the minimum current/challenger modeled-cost ratio that
	// triggers a migration (default DefaultReencodeHysteresis). Values
	// <= 1 migrate on any modeled advantage.
	Hysteresis float64
	// MinFolds is the telemetry backing (profile fold count) required
	// before a re-score may act (default 1).
	MinFolds uint64
	// Socket is where migrated payloads allocate.
	Socket int
	// Recorder receives reencode audit events (may be nil).
	Recorder *obs.Recorder
}

// watchedArray is one array under representation watch, with the value
// statistics its candidate encodings are priced from.
type watchedArray struct {
	arr   *core.SmartArray
	stats encoding.Stats
}

// Reencoder re-scores watched arrays' representations against live
// per-array telemetry and migrates them when the measured access pattern
// flips the codec pick. Check calls are serialized internally, so a
// background Start loop and manual CheckOnce calls may coexist; the
// migrations themselves are safe under concurrent scans (readers finish
// on the representation snapshot they loaded).
type Reencoder struct {
	cfg ReencoderConfig

	mu         sync.Mutex
	watched    []watchedArray
	checks     int
	migrations int

	stop chan struct{}
	done chan struct{}
}

// NewReencoder creates a re-encoder with no arrays under watch.
func NewReencoder(cfg ReencoderConfig) *Reencoder {
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = DefaultReencodeHysteresis
	}
	if cfg.MinFolds == 0 {
		cfg.MinFolds = 1
	}
	if len(cfg.Candidates) == 0 {
		cfg.Candidates = encoding.Kinds
	}
	return &Reencoder{cfg: cfg}
}

// Watch puts an array under representation watch. It decodes the array
// once to measure the value statistics candidates are priced from, so
// call it from the control thread, not a hot path.
func (r *Reencoder) Watch(a *core.SmartArray) {
	stats := encoding.Analyze(a.DecodeAll())
	r.mu.Lock()
	r.watched = append(r.watched, watchedArray{arr: a, stats: stats})
	r.mu.Unlock()
}

// Checks is how many re-scores have run; Migrations how many arrays were
// re-encoded.
func (r *Reencoder) Checks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.checks
}

// Migrations is the number of representation migrations performed.
func (r *Reencoder) Migrations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.migrations
}

// accessMix is the observed access-method weighting of one profile: what
// fraction of element reads went through each decode path. The per-codec
// cost entries disagree most between the fold paths (where RLE/Delta
// skip) and the random paths (where they seek) — the mix is exactly the
// blend the live workload pays.
type accessMix struct {
	scan, stream, reduce, gather, get float64
}

func mixOf(p *obs.AccessProfile) (accessMix, bool) {
	a := &p.Access
	total := a.ScanElems + a.StreamElems + a.ReduceElems + a.GatherElems + a.GetElems
	if total == 0 {
		return accessMix{}, false
	}
	t := float64(total)
	return accessMix{
		scan:   float64(a.ScanElems) / t,
		stream: float64(a.StreamElems) / t,
		reduce: float64(a.ReduceElems) / t,
		gather: float64(a.GatherElems) / t,
		get:    float64(a.GetElems) / t,
	}, true
}

// SeqBytePenalty converts a representation's sequential payload bytes per
// element into modeled instruction-equivalents, so density matters to the
// score: an uncompressed representation decodes cheaply but streams 8
// bytes per element. Random accesses read at cache-line granularity
// whatever the payload width, so the random byte term is (to first order)
// representation-independent and cancels out of the comparison.
const SeqBytePenalty = 1.5

// score is the modeled instruction-equivalents per element read the
// representation costs under the measured mix: the per-codec instruction
// entries weighted by the observed access-method shares, plus the
// sequential-bandwidth term for the streaming share.
func (m accessMix) score(cs encoding.CostStats) float64 {
	seq := m.scan + m.stream + m.reduce
	return m.scan*perfmodel.CostEncodedScan(cs) +
		m.stream*perfmodel.CostEncodedStream(cs) +
		m.reduce*perfmodel.CostEncodedReduce(cs) +
		m.gather*perfmodel.CostEncodedGather(cs) +
		m.get*perfmodel.CostEncodedGet(cs) +
		seq*cs.PayloadBitsPerElem/8*SeqBytePenalty
}

// CheckOnce re-scores every watched array against its live profile and
// migrates those whose measured access mix flips the codec pick by more
// than the hysteresis margin. It returns the audit events of the
// migrations performed (also recorded on the configured Recorder).
func (r *Reencoder) CheckOnce() []obs.ReencodeEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var events []obs.ReencodeEvent
	for _, w := range r.watched {
		r.checks++
		ev := r.checkOne(w)
		if ev == nil {
			continue
		}
		r.migrations++
		r.cfg.Recorder.RecordReencode(*ev)
		events = append(events, *ev)
	}
	return events
}

// checkOne re-scores one array; it returns the audit event when a
// migration happened, nil otherwise. Caller holds r.mu.
func (r *Reencoder) checkOne(w watchedArray) *obs.ReencodeEvent {
	p, ok := r.cfg.Arrays.Profile(w.arr.TelemetryID())
	if !ok || p.Folds < r.cfg.MinFolds {
		return nil
	}
	mix, ok := mixOf(&p)
	if !ok {
		return nil
	}

	current := w.arr.EncodingStats()
	curScore := mix.score(current)

	best := current.Kind
	bestScore := curScore
	var bestStats encoding.CostStats
	for _, kind := range r.cfg.Candidates {
		if kind == current.Kind {
			continue
		}
		cs := encoding.EstimateCostStats(kind, w.stats)
		if kind == encoding.BitPacked {
			// Reencode(BitPacked) restores the native packed words at the
			// array's logical width, not the value-derived minimum.
			cs.CodeBits = w.arr.Bits()
			cs.PayloadBitsPerElem = float64(cs.CodeBits)
		}
		if s := mix.score(cs); s < bestScore {
			best, bestScore, bestStats = kind, s, cs
		}
	}
	if best == current.Kind || bestScore*r.cfg.Hysteresis >= curScore {
		return nil
	}

	traffic, err := w.arr.Reencode(best, r.cfg.Socket)
	if err != nil {
		return nil
	}
	ev := &obs.ReencodeEvent{
		Name:             r.cfg.Name,
		Array:            p.Name,
		From:             current.Kind.String(),
		To:               best.String(),
		FromBits:         current.CodeBits,
		ToBits:           bestStats.CodeBits,
		PredictedFrom:    curScore,
		PredictedTo:      bestScore,
		RandomShare:      p.RandomShare(),
		ChunkDecodeShare: p.ChunkDecodeShare(),
		ReadsPerElement:  p.ReadsPerElement(),
		Folds:            p.Folds,
		TrafficBytes:     traffic,
		Reason: fmt.Sprintf(
			"live mix (chunk %.2f, random %.2f) models %s at %.2f instr/elem vs %s at %.2f",
			p.ChunkDecodeShare(), p.RandomShare(),
			current.Kind, curScore, best, bestScore),
	}
	if sel, selOK := p.Selectivity(); selOK {
		ev.Selectivity = sel
	}
	return ev
}

// Start launches the background re-encoding loop, re-scoring every
// interval until Stop. Start on a running re-encoder panics.
func (r *Reencoder) Start(interval time.Duration) {
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		panic("adapt: Reencoder already started")
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	r.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				r.CheckOnce()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// when not started.
func (r *Reencoder) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// String summarizes the re-encoder state for reports.
func (r *Reencoder) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("adapt.Reencoder{%s: %d watched, %d checks, %d migrations}",
		r.cfg.Name, len(r.watched), r.checks, r.migrations)
}
