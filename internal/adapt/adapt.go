// Package adapt implements the paper's adaptivity algorithm (§6): given a
// machine specification, an array performance specification, and a workload
// profile measured from hardware counters, it selects the smart-array
// configuration (placement × compression) predicted to be fastest.
//
// The algorithm is the paper's two-step process:
//
//	Step 1 (§6.1): walk the decision diagrams of Figure 13 to pick one
//	placement candidate for uncompressed data and, when compression is
//	admissible at all, one for compressed data.
//
//	Step 2 (§6.2): adjust the measured profile with the compressed
//	variant's extra compute (exec_compressed) and reduced traffic
//	(bw_compressed), estimate each candidate's speedup as the per-socket
//	minimum of its compute and bandwidth headroom ratios, and keep the
//	candidate predicted fastest.
//
// Profiles are measured, as in the paper, from a run with the flexible
// initial configuration: uncompressed, interleaved, threads on all cores.
package adapt

import (
	"fmt"

	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
)

// Traits are the "software characteristics" of Figure 13: facts the
// programmer declares about the workload rather than measures.
type Traits struct {
	// ReadOnly: the array is never written after initialization
	// (replication without coherence cost).
	ReadOnly bool
	// MostlyReads: writes are rare enough that compression's
	// read-oriented trade-off applies (Figure 13b's entry test).
	MostlyReads bool
	// MultipleLinearAccessesPerElement: the workload scans the array
	// enough times to amortize replica initialization.
	MultipleLinearAccessesPerElement bool
	// MultipleRandomAccessesPerElement: ditto for random access patterns.
	MultipleRandomAccessesPerElement bool
}

// Profile is the "runtime characteristics" input: measurements from the
// counter fabric during the initial (uncompressed, interleaved) run, plus
// machine- and array-specific constants (§6's three inputs).
type Profile struct {
	// MemoryBound: the measured run was limited by memory traffic rather
	// than compute (bottleneck ∈ {memory, interconnect, issue}).
	MemoryBound bool
	// SignificantRandomAccesses: a non-trivial share of accesses are
	// random gathers (latency-sensitive; expensive under compression).
	SignificantRandomAccesses bool

	// ExecCurrent is the measured execution rate (instructions/s) per
	// socket; ExecMax the machine's peak per socket.
	ExecCurrent float64
	ExecMax     float64
	// BWCurrentMemory is the measured per-socket memory bandwidth
	// (bytes/s); BWMaxMemory the socket peak; BWMaxInterconnect the
	// per-direction link peak — all scaled to observed utilization per
	// the paper.
	BWCurrentMemory   float64
	BWMaxMemory       float64
	BWMaxInterconnect float64

	// AccessesPerSec is the measured element access rate per socket
	// (the paper's #accesses).
	AccessesPerSec float64
	// CostPerCompressedAccess is the extra instructions a compressed
	// access costs on this machine (array + machine specific, §6.2).
	CostPerCompressedAccess float64
	// CompressionRatio is r ∈ (0,1]: compressed size / uncompressed size.
	CompressionRatio float64
	// ElemBytes is the uncompressed element size (8 for 64-bit arrays).
	ElemBytes float64

	// SpaceForUncompressedReplication / SpaceForCompressedReplication:
	// does each socket have DRAM for a full (un)compressed replica
	// (Figure 13's two space tests — compression can make replication
	// possible where uncompressed data would not fit).
	SpaceForUncompressedReplication bool
	SpaceForCompressedReplication   bool
}

// Candidate is a selected configuration.
type Candidate struct {
	// Placement is the NUMA placement.
	Placement memsim.Placement
	// Socket is the single-socket target (always 0 here: the diagrams
	// do not distinguish sockets on symmetric machines).
	Socket int
	// Compressed selects bit compression.
	Compressed bool
	// Reason records the decision path for reports (Table 2 rationale).
	Reason string
	// PredictedSpeedup is filled by step 2 for the chosen candidate.
	PredictedSpeedup float64
}

// String formats the candidate like the paper's figure labels.
func (c Candidate) String() string {
	s := c.Placement.String()
	if c.Compressed {
		s += " + compression"
	}
	return s
}

// singleSocketBeneficial implements §6.1's "all local speedup > all remote
// slowdown" test.
func singleSocketBeneficial(p *Profile) bool {
	if p.BWCurrentMemory <= 0 || p.ExecCurrent <= 0 {
		return false
	}
	improvementExec := p.ExecMax / p.ExecCurrent
	improvementBW := (p.BWMaxMemory - p.BWMaxInterconnect) / p.BWCurrentMemory
	speedupLocal := improvementExec
	if improvementBW < speedupLocal {
		speedupLocal = improvementBW
	}
	speedupRemote := p.BWMaxInterconnect / p.BWCurrentMemory
	return (speedupLocal+speedupRemote)/2 > 1
}

// SelectUncompressedPlacement walks Figure 13a and returns the placement
// candidate for uncompressed data.
func SelectUncompressedPlacement(tr Traits, p *Profile) Candidate {
	if !p.MemoryBound {
		return Candidate{Placement: memsim.Interleaved,
			Reason: "not memory bound: placement immaterial, interleave for symmetry"}
	}
	if tr.ReadOnly && p.SpaceForUncompressedReplication {
		if p.SignificantRandomAccesses {
			if tr.MultipleRandomAccessesPerElement {
				return Candidate{Placement: memsim.Replicated,
					Reason: "read-only, space available, repeated random accesses amortize replicas"}
			}
		} else if tr.MultipleLinearAccessesPerElement {
			return Candidate{Placement: memsim.Replicated,
				Reason: "read-only, space available, repeated linear accesses amortize replicas"}
		}
	}
	if singleSocketBeneficial(p) {
		return Candidate{Placement: memsim.SingleSocket,
			Reason: "local speedup outweighs remote slowdown (high local/remote bandwidth ratio)"}
	}
	return Candidate{Placement: memsim.Interleaved,
		Reason: "memory bound: spread load across memory channels"}
}

// SelectCompressedPlacement walks Figure 13b. ok is false when compression
// is not admissible for this workload at all ("No Compression").
func SelectCompressedPlacement(tr Traits, p *Profile) (c Candidate, ok bool) {
	if !p.MemoryBound {
		return Candidate{Reason: "not memory bound: decompression load cannot be hidden"}, false
	}
	if !tr.MostlyReads {
		return Candidate{Reason: "write-heavy: per-write pack cost and synchronization"}, false
	}
	if p.SignificantRandomAccesses && !tr.MultipleRandomAccessesPerElement {
		return Candidate{Reason: "random accesses load extra words under compression"}, false
	}
	if tr.ReadOnly && p.SpaceForCompressedReplication &&
		(tr.MultipleLinearAccessesPerElement || tr.MultipleRandomAccessesPerElement) {
		return Candidate{Placement: memsim.Replicated, Compressed: true,
			Reason: "read-only, compressed replicas fit, accesses amortize initialization"}, true
	}
	if singleSocketBeneficial(p) {
		return Candidate{Placement: memsim.SingleSocket, Compressed: true,
			Reason: "local speedup outweighs remote slowdown"}, true
	}
	return Candidate{Placement: memsim.Interleaved, Compressed: true,
		Reason: "memory bound: compressed stream across all channels"}, true
}

// estimateSpeedup implements §6.2's analytics: the candidate's predicted
// speedup over the measured run is the per-socket minimum of its compute
// headroom and its bandwidth headroom (averaged over sockets; symmetric
// machines collapse to one term).
func estimateSpeedup(spec *machine.Spec, p *Profile, c Candidate) float64 {
	exec := p.ExecCurrent
	bw := p.BWCurrentMemory
	if c.Compressed {
		exec = p.ExecCurrent + p.AccessesPerSec*p.CostPerCompressedAccess
		bw = p.BWCurrentMemory - p.AccessesPerSec*(1-p.CompressionRatio)*p.ElemBytes
		if bw <= 0 {
			bw = 1 // fully cached/compressed away; headroom is compute-bound
		}
	}
	computeRatio := p.ExecMax / exec
	bwMax := maxBandwidthFor(spec, p, c)
	bwRatio := bwMax / bw
	if computeRatio < bwRatio {
		return computeRatio
	}
	return bwRatio
}

// maxBandwidthFor is the per-socket memory bandwidth the placement can
// reach on this machine, scaled like the paper to the utilization the
// measurement achieved (we measure with the model, so utilization is the
// profile's BWMaxMemory already).
func maxBandwidthFor(spec *machine.Spec, p *Profile, c Candidate) float64 {
	switch c.Placement {
	case memsim.Replicated:
		// All accesses local: the full socket channel.
		return p.BWMaxMemory
	case memsim.SingleSocket:
		// One memory serves everyone: per socket that is local bandwidth
		// shared across sockets.
		return p.BWMaxMemory / float64(spec.Sockets)
	default:
		// Interleaved: each socket sustains its share of every channel,
		// limited by the link for the remote part; stall-adjusted.
		n := float64(spec.Sockets)
		remoteShare := (n - 1) / n
		link := p.BWMaxInterconnect
		channel := p.BWMaxMemory / (1 + remoteShare*(spec.RemoteStallFactor-1))
		if link/remoteShare < channel {
			return link / remoteShare
		}
		return channel
	}
}

// Decide runs the full §6 pipeline: step 1 candidate selection, step 2
// compression decision. It returns the chosen configuration with its
// predicted speedup and decision trail.
func Decide(spec *machine.Spec, tr Traits, p *Profile) Candidate {
	chosen, _, _, _ := decide(spec, tr, p)
	return chosen
}

// decide is the shared §6 core: it returns the chosen configuration plus
// both step-1 candidates so callers (and the trace layer) can inspect the
// full candidate set.
func decide(spec *machine.Spec, tr Traits, p *Profile) (chosen, unc, comp Candidate, compOK bool) {
	unc = SelectUncompressedPlacement(tr, p)
	unc.PredictedSpeedup = estimateSpeedup(spec, p, unc)
	comp, compOK = SelectCompressedPlacement(tr, p)
	if !compOK {
		chosen = unc
		chosen.Reason = fmt.Sprintf("%s; compression rejected: %s", unc.Reason, comp.Reason)
		return chosen, unc, comp, false
	}
	comp.PredictedSpeedup = estimateSpeedup(spec, p, comp)
	if comp.PredictedSpeedup > unc.PredictedSpeedup {
		return comp, unc, comp, true
	}
	return unc, unc, comp, true
}
