package adapt

import (
	"testing"

	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/perfmodel"
)

// pageRankUsages models the PageRank array set at Twitter scale on the
// 8-core machine (the workload the paper says its adaptivity cannot yet
// handle): a heavy semi-random rank gather, a big streamed edge array,
// small streamed begin arrays, and a written next-rank array.
func pageRankUsages() []ArrayUsage {
	const iters = 1
	return []ArrayUsage{
		{Name: "ranks", PayloadBytes: 336e6, RandomBytes: 62e9 * iters, ScanBytes: 0.34e9, ReadOnly: true},
		{Name: "redge", PayloadBytes: 6e9, ScanBytes: 6e9 * iters, ReadOnly: true},
		{Name: "rbegin", PayloadBytes: 336e6, ScanBytes: 0.34e9 * iters, ReadOnly: true},
		{Name: "next", PayloadBytes: 336e6, WriteBytes: 0.34e9 * iters},
	}
}

func findDecision(t *testing.T, ds []MultiDecision, name string) MultiDecision {
	t.Helper()
	for _, d := range ds {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no decision for %q", name)
	return MultiDecision{}
}

func TestDecideMultiReplicatesHotReadOnlyArrays(t *testing.T) {
	spec := machine.X52Small()
	ds, res := DecideMulti(spec, 128<<30, 50e9, pageRankUsages())
	// With ample memory, the hot read-only arrays replicate.
	if d := findDecision(t, ds, "ranks"); d.Placement != memsim.Replicated {
		t.Errorf("ranks placement = %v, want replicated", d)
	}
	if d := findDecision(t, ds, "redge"); d.Placement != memsim.Replicated {
		t.Errorf("redge placement = %v, want replicated", d)
	}
	// The written array must never replicate.
	if d := findDecision(t, ds, "next"); d.Placement == memsim.Replicated {
		t.Errorf("writable array replicated: %v", d)
	}
	// The joint decision beats the all-interleaved baseline.
	baseline := perfmodel.Solve(spec, buildMultiWorkload(50e9, pageRankUsages(),
		allInterleaved(pageRankUsages())))
	if res.Seconds >= baseline.Seconds {
		t.Errorf("joint placement (%.2fs) should beat all-interleaved (%.2fs)",
			res.Seconds, baseline.Seconds)
	}
}

func TestDecideMultiRespectsCapacity(t *testing.T) {
	spec := machine.X52Small()
	// Capacity fits interleaved everything plus replicating ONLY the small
	// arrays — the 6 GB edge array cannot replicate (needs 6 GB/socket on
	// top of everything else at 6.5 GB/socket cap).
	usages := pageRankUsages()
	capPerSocket := uint64(6.5e9)
	ds, _ := DecideMulti(spec, capPerSocket, 50e9, usages)
	if !fitsCapacity(spec, capPerSocket, usages, ds) {
		t.Fatalf("decision exceeds capacity: %v", ds)
	}
	if d := findDecision(t, ds, "redge"); d.Placement == memsim.Replicated {
		t.Errorf("6 GB edge array replicated under 6.5 GB/socket capacity: %v", ds)
	}
	// The hottest array (ranks, small payload) still replicates.
	if d := findDecision(t, ds, "ranks"); d.Placement != memsim.Replicated {
		t.Errorf("ranks placement = %v, want replicated (fits easily)", d)
	}
}

func TestDecideMultiInfeasibleStartReportsAsIs(t *testing.T) {
	spec := machine.X52Small()
	usages := []ArrayUsage{{Name: "huge", PayloadBytes: 100e9, ScanBytes: 1e9, ReadOnly: true}}
	ds, _ := DecideMulti(spec, 1e9, 1e9, usages)
	// Nothing feasible: the engine leaves the flexible configuration.
	if ds[0].Placement != memsim.Interleaved {
		t.Errorf("infeasible case placement = %v, want interleaved", ds[0].Placement)
	}
}

func TestFitsCapacityAccounting(t *testing.T) {
	spec := machine.X52Small()
	usages := []ArrayUsage{{Name: "a", PayloadBytes: 10 << 30}}
	repl := []MultiDecision{{Name: "a", Placement: memsim.Replicated}}
	single := []MultiDecision{{Name: "a", Placement: memsim.SingleSocket, Socket: 1}}
	inter := []MultiDecision{{Name: "a", Placement: memsim.Interleaved}}
	if fitsCapacity(spec, 9<<30, usages, repl) {
		t.Error("replicated 10 GB should not fit 9 GB/socket")
	}
	if fitsCapacity(spec, 9<<30, usages, single) {
		t.Error("pinned 10 GB should not fit 9 GB on its socket")
	}
	if !fitsCapacity(spec, 9<<30, usages, inter) {
		t.Error("interleaved 10 GB (5/socket) should fit 9 GB/socket")
	}
}

func TestMultiDecisionString(t *testing.T) {
	d := MultiDecision{Name: "x", Placement: memsim.SingleSocket, Socket: 1}
	if got := d.String(); got != "x: single socket 1" {
		t.Errorf("String() = %q", got)
	}
	d2 := MultiDecision{Name: "y", Placement: memsim.Replicated}
	if got := d2.String(); got != "y: replicated" {
		t.Errorf("String() = %q", got)
	}
}

func allInterleaved(usages []ArrayUsage) []MultiDecision {
	out := make([]MultiDecision, len(usages))
	for i, u := range usages {
		out[i] = MultiDecision{Name: u.Name, Placement: memsim.Interleaved}
	}
	return out
}
