package adapt

import (
	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
)

// This file is the adaptivity engine's observability surface: every
// decision can be exported as a typed obs.DecisionEvent carrying the
// profiled counter inputs, the candidate set the Figure 13 diagrams
// produced, and the §6.2 speedup estimates — the full "why" behind a
// placement/compression pick.

// Record converts the profile into its JSON trace form.
func (p *Profile) Record() obs.ProfileRecord {
	return obs.ProfileRecord{
		MemoryBound:               p.MemoryBound,
		SignificantRandomAccesses: p.SignificantRandomAccesses,
		ExecCurrent:               p.ExecCurrent,
		ExecMax:                   p.ExecMax,
		BWCurrentMemory:           p.BWCurrentMemory,
		BWMaxMemory:               p.BWMaxMemory,
		BWMaxInterconnect:         p.BWMaxInterconnect,
		AccessesPerSec:            p.AccessesPerSec,
		CostPerCompressedAccess:   p.CostPerCompressedAccess,
		CompressionRatio:          p.CompressionRatio,
		ElemBytes:                 p.ElemBytes,
		SpaceUncompressedRepl:     p.SpaceForUncompressedReplication,
		SpaceCompressedRepl:       p.SpaceForCompressedReplication,
	}
}

// candidateRecord converts a step-1 candidate into its trace form.
func candidateRecord(c Candidate, admissible bool) obs.CandidateRecord {
	return obs.CandidateRecord{
		Placement:        c.Placement.String(),
		Compressed:       c.Compressed,
		Admissible:       admissible,
		Reason:           c.Reason,
		PredictedSpeedup: c.PredictedSpeedup,
	}
}

// DecideExplained runs Decide and additionally returns the decision event
// describing it: the profile inputs, both step-1 candidates (including an
// inadmissible compression candidate with its rejection reason), and the
// chosen configuration. The caller may enrich the event with realized
// costs before recording it.
func DecideExplained(spec *machine.Spec, tr Traits, p *Profile, name string) (Candidate, obs.DecisionEvent) {
	chosen, unc, comp, compOK := decide(spec, tr, p)
	ev := obs.DecisionEvent{
		Name:    name,
		Machine: spec.Name,
		Profile: p.Record(),
		Candidates: []obs.CandidateRecord{
			candidateRecord(unc, true),
			candidateRecord(comp, compOK),
		},
		Chosen:           chosen.String(),
		ChosenCompressed: chosen.Compressed,
		PredictedSpeedup: chosen.PredictedSpeedup,
	}
	return chosen, ev
}

// DecideRecorded is Decide with tracing: the decision event is recorded
// on rec (which may be nil, making it exactly Decide).
func DecideRecorded(spec *machine.Spec, tr Traits, p *Profile, rec *obs.Recorder, name string) Candidate {
	chosen, ev := DecideExplained(spec, tr, p, name)
	rec.RecordDecision(ev)
	return chosen
}
