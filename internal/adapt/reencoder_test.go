package adapt

import (
	"testing"
	"time"

	"smartarrays/internal/core"
	"smartarrays/internal/encoding"
	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/obs"
	"smartarrays/internal/rts"
)

// reencoderFixture is a clustered array under telemetry on a live
// runtime, plus drivers for the two access extremes.
type reencoderFixture struct {
	rt  *rts.Runtime
	reg *obs.ArrayRegistry
	arr *core.SmartArray
	n   uint64
	ref uint64
}

func newReencoderFixture(t *testing.T) *reencoderFixture {
	t.Helper()
	rt := rts.New(machine.X52Small())
	reg := obs.NewArrayRegistry()
	prev := core.ActiveArrayRegistry()
	core.SetArrayRegistry(reg)
	t.Cleanup(func() { core.SetArrayRegistry(prev) })
	rt.SetArrayProfiling(reg)

	const n = 1 << 15
	a, err := core.Allocate(rt.Memory(), core.Config{
		Length: n, Bits: 16, Placement: memsim.Interleaved, Name: "watched",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Free)
	f := &reencoderFixture{rt: rt, reg: reg, arr: a, n: n}
	for i := uint64(0); i < n; i++ {
		v := f.value(i)
		a.Init(0, i, v)
		f.ref += v
	}
	return f
}

// value gives equal-value runs of hash values: RLE-friendly, nothing for
// delta or FoR to exploit.
func (f *reencoderFixture) value(i uint64) uint64 {
	h := (i/32)*6364136223846793005 + 1442695040888963407
	h ^= h >> 31
	return h & (1<<16 - 1)
}

// scan drives fused reductions through the telemetry-accounting path.
func (f *reencoderFixture) scan(t *testing.T, passes int) {
	t.Helper()
	for p := 0; p < passes; p++ {
		sum := f.rt.ReduceSum(0, f.n, 0, func(w *rts.Worker, lo, hi uint64) uint64 {
			f.arr.AccountReduce(w.Counters, lo, hi)
			return core.ReduceRange(f.arr, w.Socket, lo, hi, core.ReduceSum)
		})
		if sum != f.ref {
			t.Fatalf("scan pass %d: sum = %d, want %d", p, sum, f.ref)
		}
	}
}

// gatherLoop drives one random-gather pass through the accounting path.
func (f *reencoderFixture) gatherLoop(t *testing.T) {
	t.Helper()
	idx := make([]uint64, f.n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range idx {
		x = x*6364136223846793005 + 1442695040888963407
		idx[i] = x % f.n
	}
	f.rt.ParallelFor(0, f.n, 0, func(w *rts.Worker, lo, hi uint64) {
		out := make([]uint64, hi-lo)
		core.Gather(f.arr, w.Socket, idx[lo:hi], out)
		f.arr.AccountGather(w.Counters, hi-lo, 1)
	})
}

// TestReencoderFollowsAccessDrift is the unit-level drift scenario: a
// fold-only mix migrates the clustered array to RLE; once random gathers
// dominate, the next re-score migrates it off RLE again.
func TestReencoderFollowsAccessDrift(t *testing.T) {
	f := newReencoderFixture(t)
	re := NewReencoder(ReencoderConfig{Name: "unit", Arrays: f.reg})
	re.Watch(f.arr)

	if events := re.CheckOnce(); len(events) != 0 {
		t.Fatalf("no-telemetry check migrated: %+v", events)
	}

	f.scan(t, 3)
	events := re.CheckOnce()
	if len(events) != 1 {
		t.Fatalf("scan-mix check produced %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.From != "bitpacked" || ev.To != "rle" {
		t.Fatalf("scan-mix migration %s -> %s, want bitpacked -> rle", ev.From, ev.To)
	}
	if ev.Folds == 0 || ev.TrafficBytes == 0 || ev.PredictedTo >= ev.PredictedFrom {
		t.Errorf("implausible event: %+v", ev)
	}
	if got := f.arr.EncodingKind(); got != encoding.RLE {
		t.Fatalf("array is %v after migration, want rle", got)
	}
	// The fold stays exact on the new representation.
	f.scan(t, 1)

	for loop := 0; loop < 8 && f.arr.EncodingKind() == encoding.RLE; loop++ {
		f.gatherLoop(t)
		re.CheckOnce()
	}
	if got := f.arr.EncodingKind(); got == encoding.RLE {
		t.Fatal("random-dominant mix never migrated off rle")
	}
	f.scan(t, 1)
	if re.Migrations() < 2 {
		t.Errorf("Migrations = %d, want >= 2", re.Migrations())
	}
}

// TestReencoderHysteresisBlocksMarginalFlips pins that a sufficiently
// large hysteresis holds the current representation even when a
// challenger models cheaper.
func TestReencoderHysteresisBlocksMarginalFlips(t *testing.T) {
	f := newReencoderFixture(t)
	re := NewReencoder(ReencoderConfig{Name: "unit", Arrays: f.reg, Hysteresis: 1e9})
	re.Watch(f.arr)
	f.scan(t, 3)
	if events := re.CheckOnce(); len(events) != 0 {
		t.Fatalf("hysteresis 1e9 still migrated: %+v", events)
	}
	if re.Checks() == 0 {
		t.Error("check did not run")
	}
}

// TestReencoderMinFoldsGate pins that thin telemetry cannot trigger a
// migration.
func TestReencoderMinFoldsGate(t *testing.T) {
	f := newReencoderFixture(t)
	re := NewReencoder(ReencoderConfig{Name: "unit", Arrays: f.reg, MinFolds: 1 << 40})
	re.Watch(f.arr)
	f.scan(t, 3)
	if events := re.CheckOnce(); len(events) != 0 {
		t.Fatalf("MinFolds gate still migrated: %+v", events)
	}
}

// TestReencoderCandidateRestriction pins that only configured candidates
// are considered.
func TestReencoderCandidateRestriction(t *testing.T) {
	f := newReencoderFixture(t)
	re := NewReencoder(ReencoderConfig{
		Name: "unit", Arrays: f.reg,
		Candidates: []encoding.Kind{encoding.FoR},
	})
	re.Watch(f.arr)
	f.scan(t, 3)
	re.CheckOnce()
	if got := f.arr.EncodingKind(); got == encoding.RLE {
		t.Fatalf("migrated to %v, which is not a configured candidate", got)
	}
}

// TestReencoderBackground runs the ticker loop end to end and checks
// Stop is idempotent and safe when never started.
func TestReencoderBackground(t *testing.T) {
	f := newReencoderFixture(t)
	re := NewReencoder(ReencoderConfig{Name: "unit", Arrays: f.reg})
	re.Watch(f.arr)
	f.scan(t, 3)

	re.Start(time.Millisecond)
	deadline := time.After(5 * time.Second)
	for f.arr.EncodingKind() == encoding.BitPacked {
		select {
		case <-deadline:
			t.Fatal("background loop never migrated")
		case <-time.After(5 * time.Millisecond):
		}
	}
	re.Stop()
	re.Stop() // idempotent

	unstarted := NewReencoder(ReencoderConfig{Name: "unit", Arrays: f.reg})
	unstarted.Stop() // safe when never started
}
