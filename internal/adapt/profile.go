package adapt

import (
	"smartarrays/internal/machine"
	"smartarrays/internal/perfmodel"
)

// ProfileOpts carries the workload facts that accompany a measurement when
// building a Profile (§6's array specification plus counter-derived
// totals).
type ProfileOpts struct {
	// Accesses is the total element accesses during the measured run;
	// RandomAccesses the subset that were random gathers.
	Accesses       float64
	RandomAccesses float64
	// CompressedBits is the width bit compression would use (the minimum
	// bits for the array's values); UncompressedBits the current width
	// (64, or 32 for int arrays).
	CompressedBits   uint
	UncompressedBits uint
	// SpaceUncompressedRepl / SpaceCompressedRepl report whether replicas
	// fit in each socket's remaining DRAM (from memsim.Memory.CanAlloc).
	SpaceUncompressedRepl bool
	SpaceCompressedRepl   bool
}

// SignificantRandomFraction is the share of random accesses above which
// the workload counts as having "significant random accesses" (Figure 13).
const SignificantRandomFraction = 0.10

// ProfileFromResult derives the §6 profile from the outcome of the initial
// measurement run (uncompressed, interleaved — the paper's flexible
// starting configuration) on the given machine.
func ProfileFromResult(spec *machine.Spec, res perfmodel.Result, opts ProfileOpts) *Profile {
	n := float64(spec.Sockets)
	secs := res.Seconds
	if secs <= 0 {
		secs = 1e-12
	}
	uncompBits := opts.UncompressedBits
	if uncompBits == 0 {
		uncompBits = 64
	}
	ratio := 1.0
	if opts.CompressedBits > 0 {
		ratio = float64(opts.CompressedBits) / float64(uncompBits)
	}
	randomFrac := 0.0
	if opts.Accesses > 0 {
		randomFrac = opts.RandomAccesses / opts.Accesses
	}
	compCost := 0.0
	if opts.CompressedBits > 0 {
		compCost = perfmodel.CostScan(opts.CompressedBits) - perfmodel.CostScan(uncompBits)
		if compCost < 0 {
			compCost = 0
		}
	}
	return &Profile{
		MemoryBound:               res.Bottleneck != perfmodel.BottleneckCompute,
		SignificantRandomAccesses: randomFrac > SignificantRandomFraction,

		ExecCurrent: res.Instructions / n / secs,
		ExecMax:     spec.ExecRate(),

		BWCurrentMemory:   res.TotalBytes / n / secs,
		BWMaxMemory:       spec.LocalBWGBs * machine.GB,
		BWMaxInterconnect: spec.RemoteBWGBs * machine.GB,

		AccessesPerSec:          opts.Accesses / n / secs,
		CostPerCompressedAccess: compCost,
		CompressionRatio:        ratio,
		ElemBytes:               float64(uncompBits) / 8,

		SpaceForUncompressedReplication: opts.SpaceUncompressedRepl,
		SpaceForCompressedReplication:   opts.SpaceCompressedRepl,
	}
}
