package adapt

import (
	"smartarrays/internal/encoding"
	"smartarrays/internal/obs"
	"smartarrays/internal/perfmodel"
)

// Pruning-aware plan scoring: given an array's representation summary and
// a predicate's observed selectivity, price a predicated scan (selection
// bitmap plus masked fold) with and without a chunk zone index. The
// planner layers (colstore predicate ordering, future re-scorers) use the
// gain to decide whether building or consulting the index pays off —
// the zone-map counterpart of the codec re-scoring in reencoder.go.

// PruningScore is the modeled per-element cost of one predicated scan.
type PruningScore struct {
	// Unpruned is mask build plus masked fold with no zone index.
	Unpruned float64
	// Pruned is the zone-consulted equivalent.
	Pruned float64
	// Gain is Unpruned / Pruned — >1 means pruning wins.
	Gain float64
}

// ScorePruning prices a predicated scan over a representation summarized
// by cs. sel is the predicate's selectivity (matching share). clustering
// in [0, 1] is how concentrated the matches are: 1 means sorted or
// perfectly clustered values (the zone index resolves every chunk outside
// the match boundary), 0 means matches scattered uniformly (nothing
// resolves).
func ScorePruning(cs encoding.CostStats, sel, clustering float64) PruningScore {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	if clustering < 0 {
		clustering = 0
	}
	if clustering > 1 {
		clustering = 1
	}
	// Resolved chunks split into proven-empty and proven-full shares;
	// the fold still visits every chunk with any live mask bit.
	noneShare := (1 - sel) * clustering
	allShare := sel * clustering
	foldShare := 1 - noneShare

	unpruned := perfmodel.CostEncodedMask(cs) + foldShare*perfmodel.CostEncodedMaskedReduce(cs)
	pruned := perfmodel.CostEncodedPrunedMask(cs, noneShare+allShare) +
		perfmodel.CostEncodedPrunedMaskedReduce(cs, foldShare)
	s := PruningScore{Unpruned: unpruned, Pruned: pruned}
	if pruned > 0 {
		s.Gain = unpruned / pruned
	}
	return s
}

// ScorePruningProfile is ScorePruning fed from a live access profile: the
// observed predicate selectivity (neutral 1.0 when the profile has no
// predicate observations yet, which prices pruning as pure overhead).
func ScorePruningProfile(p *obs.AccessProfile, cs encoding.CostStats, clustering float64) PruningScore {
	sel := 1.0
	if p != nil {
		if s, ok := p.Selectivity(); ok {
			sel = s
		}
	}
	return ScorePruning(cs, sel, clustering)
}
