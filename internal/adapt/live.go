package adapt

import (
	"fmt"

	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/perfmodel"
)

// Live re-scoring: the §6 decision was made once, from a one-shot
// profiling run — but the paper's Figure 13 inputs (significant random
// accesses, multiple accesses per element) and the §6.2 cost terms are all
// *measurable*, and the per-array telemetry registry measures them
// continuously. A Monitor re-walks the decision diagrams against the live
// AccessProfile and emits a DecisionDrift audit event whenever the
// observed access pattern would flip the original pick — the feedback
// loop DimmWitted-style per-structure tracking enables and the paper's
// one-shot profiler cannot close.

// MonitorConfig sets up a live re-scoring monitor for one array/workload.
type MonitorConfig struct {
	Spec *machine.Spec
	// Traits are the declared software characteristics; the measured
	// amortization traits (multiple linear/random accesses per element)
	// are overridden by telemetry at every check.
	Traits Traits
	// Base is the profile from the initial measurement run; live signals
	// overlay it.
	Base *Profile
	// Initial is the configuration the §6 pipeline chose from Base.
	Initial Candidate
	// Name labels the workload in drift events.
	Name string
	// CompressedBits/UncompressedBits are the §6.2 cost-term widths
	// (UncompressedBits defaults to 64).
	CompressedBits, UncompressedBits uint
}

// Monitor re-scores a §6 decision against live per-array telemetry.
// Not safe for concurrent Check calls; drive it from the control thread
// between loops.
type Monitor struct {
	cfg  MonitorConfig
	last Candidate
	// checks counts re-scores; drifts counts emitted flips.
	checks, drifts int
}

// NewMonitor creates a monitor holding the initial decision.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.UncompressedBits == 0 {
		cfg.UncompressedBits = 64
	}
	return &Monitor{cfg: cfg, last: cfg.Initial}
}

// Current is the configuration the most recent check selected (the
// initial pick before any drift).
func (m *Monitor) Current() Candidate { return m.last }

// Drifts is how many flips the monitor has emitted.
func (m *Monitor) Drifts() int { return m.drifts }

// liveTraits replaces the declared amortization traits with measured
// ones: an element set read more than once through an access method
// amortizes replica initialization for that method — now a fact from the
// registry, not a programmer promise.
func (m *Monitor) liveTraits(p *obs.AccessProfile) Traits {
	tr := m.cfg.Traits
	if p.Length > 0 {
		linear := p.Access.ScanElems + p.Access.StreamElems + p.Access.ReduceElems
		random := p.Access.GatherElems + p.Access.GetElems
		tr.MultipleLinearAccessesPerElement = linear > p.Length
		tr.MultipleRandomAccessesPerElement = random > p.Length
	}
	return tr
}

// liveProfile overlays the measured per-array signals on the base
// profile:
//
//   - SignificantRandomAccesses comes from the observed random share
//     (gathers + per-element gets over all reads), replacing the one-shot
//     workload-level estimate;
//   - the §6.2 compressed-access cost is re-weighted by the observed
//     access-method mix: chunk-decoded accesses (streams/reduces/scans)
//     pay the fused decode delta, random accesses pay Function 1's
//     per-call delta — a workload that drifted from scanning to gathering
//     sees its compression cost rise accordingly;
//   - observed predicate selectivity scales the access rate the
//     compression cost multiplies: masked folds skip non-matching chunks,
//     so only the selected fraction pays the per-access decode.
func (m *Monitor) liveProfile(p *obs.AccessProfile) *Profile {
	lp := *m.cfg.Base
	lp.SignificantRandomAccesses = p.RandomShare() > SignificantRandomFraction
	if m.cfg.CompressedBits > 0 {
		cb, ub := m.cfg.CompressedBits, m.cfg.UncompressedBits
		chunkCost := perfmodel.CostReduce(cb) - perfmodel.CostReduce(ub)
		randCost := perfmodel.CostGet(cb) - perfmodel.CostGet(ub)
		if chunkCost < 0 {
			chunkCost = 0
		}
		if randCost < 0 {
			randCost = 0
		}
		chunk, random := p.ChunkDecodeShare(), p.RandomShare()
		if chunk+random > 0 {
			lp.CostPerCompressedAccess = chunk*chunkCost + random*randCost
		}
	}
	if sel, ok := p.Selectivity(); ok {
		lp.AccessesPerSec *= sel
	}
	return &lp
}

// Check re-walks the §6 pipeline against the live profile. When the live
// pick differs from the last one, it returns a drift audit event (nil
// otherwise) and adopts the live pick as current.
func (m *Monitor) Check(p obs.AccessProfile) (Candidate, *obs.DriftEvent) {
	m.checks++
	tr := m.liveTraits(&p)
	lp := m.liveProfile(&p)
	chosen, _, _, _ := decide(m.cfg.Spec, tr, lp)
	if chosen.String() == m.last.String() {
		return chosen, nil
	}
	prev := m.last
	m.last = chosen
	m.drifts++
	ev := &obs.DriftEvent{
		Name:             m.cfg.Name,
		Array:            p.Name,
		Initial:          prev.String(),
		Live:             chosen.String(),
		InitialPredicted: prev.PredictedSpeedup,
		LivePredicted:    chosen.PredictedSpeedup,
		RandomShare:      p.RandomShare(),
		ChunkDecodeShare: p.ChunkDecodeShare(),
		LocalShare:       p.LocalShare(),
		ReadsPerElement:  p.ReadsPerElement(),
		Folds:            p.Folds,
		Reason:           chosen.Reason,
	}
	if sel, ok := p.Selectivity(); ok {
		ev.Selectivity = sel
	}
	return chosen, ev
}

// CheckRecorded is Check with the drift event recorded on rec (which may
// be nil). It reports whether a drift occurred.
func (m *Monitor) CheckRecorded(p obs.AccessProfile, rec *obs.Recorder) (Candidate, bool) {
	chosen, ev := m.Check(p)
	if ev == nil {
		return chosen, false
	}
	rec.RecordDrift(*ev)
	return chosen, true
}

// String summarizes the monitor state for reports.
func (m *Monitor) String() string {
	return fmt.Sprintf("adapt.Monitor{%s: %s, %d checks, %d drifts}",
		m.cfg.Name, m.last.String(), m.checks, m.drifts)
}
