package adapt

import (
	"smartarrays/internal/encoding"
	"smartarrays/internal/perfmodel"
)

// Shared-scan enrollment scoring: should this query ride the table's
// cooperative pass or run its own zone-pruned scan? The DimmWitted
// tradeoff applied to the scan cursor — sharing amortizes the chunk
// decode across the batch but costs a wraparound wait, so it wins
// exactly when the independent scan still pays for the walk (un-prunable
// predicates under concurrency) and loses when the zone index already
// resolves almost everything (highly selective clustered predicates,
// whose independent cost sits near the zone-check floor).

// SharedScanScore is the modeled per-element choice for one query.
type SharedScanScore struct {
	// Independent is the query's own zone-pruned scan (mask + fold).
	Independent float64
	// Shared is the query's share of a cooperative pass of Batch queries.
	Shared float64
	// Batch is the enrollment estimate the score was taken at.
	Batch int
	// Gain is Independent / Shared — >1 means enrolling wins.
	Gain float64
	// Enroll is the decision: sharing beats the independent scan and
	// there is someone to share with.
	Enroll bool
}

// ScoreSharedScan prices enrollment for a query over a representation
// summarized by cs. resolvedShare is the share of chunks the zone index
// resolves outright for the query's predicates (no payload touched);
// foldShare is the share still carrying live mask bits into the fold
// (both from encoding.ZoneIndex.PruneStatsFor, conservatively combined
// over the conjunction). batch is the expected cooperative batch size —
// the coordinator's current enrollment plus the admission backlog.
func ScoreSharedScan(cs encoding.CostStats, foldShare, resolvedShare float64, batch int) SharedScanScore {
	if batch < 1 {
		batch = 1
	}
	independent := perfmodel.CostEncodedPrunedMask(cs, resolvedShare) +
		perfmodel.CostEncodedPrunedMaskedReduce(cs, foldShare)
	shared := perfmodel.CostSharedScan(cs, foldShare, batch)
	s := SharedScanScore{Independent: independent, Shared: shared, Batch: batch}
	if shared > 0 {
		s.Gain = independent / shared
	}
	s.Enroll = batch >= 2 && shared < independent
	return s
}
