package adapt

import (
	"testing"

	"smartarrays/internal/encoding"
	"smartarrays/internal/obs"
)

func bitpacked16() encoding.CostStats {
	return encoding.CostStats{Kind: encoding.BitPacked, CodeBits: 16, PayloadBitsPerElem: 16}
}

// TestScorePruningClusteredSelective pins the headline case: a selective
// predicate over clustered data should model an order-of-magnitude win.
func TestScorePruningClusteredSelective(t *testing.T) {
	s := ScorePruning(bitpacked16(), 0.05, 1.0)
	if s.Gain < 10 {
		t.Fatalf("clustered 5%% selectivity: gain %.2f, want >= 10", s.Gain)
	}
	if s.Pruned >= s.Unpruned {
		t.Fatalf("pruned %.3f not cheaper than unpruned %.3f", s.Pruned, s.Unpruned)
	}
}

// TestScorePruningUniformNearNeutral pins the other end: with no
// clustering the index resolves nothing and pruning costs only the zone
// check (a few percent, never a blowup).
func TestScorePruningUniformNearNeutral(t *testing.T) {
	s := ScorePruning(bitpacked16(), 0.05, 0.0)
	if s.Gain > 1.01 || s.Gain < 0.9 {
		t.Fatalf("uniform data: gain %.3f, want ~1 (pure zone-check overhead)", s.Gain)
	}
}

// TestScorePruningMonotonicInClustering checks more clustering never
// makes pruning look worse.
func TestScorePruningMonotonicInClustering(t *testing.T) {
	cs := bitpacked16()
	prev := -1.0
	for _, cl := range []float64{0, 0.25, 0.5, 0.75, 1} {
		g := ScorePruning(cs, 0.1, cl).Gain
		if g < prev {
			t.Fatalf("gain decreased with clustering: %.3f after %.3f at cl=%.2f", g, prev, cl)
		}
		prev = g
	}
}

// TestScorePruningProfileFallback: with no predicate observations the
// profile-driven score falls back to sel=1. On unclustered data that is
// pure zone-check overhead (no claimed win); on clustered data an
// all-match predicate still halves the work (the mask build is skipped),
// so the gain is bounded by ~2, never the selective-scan blowup.
func TestScorePruningProfileFallback(t *testing.T) {
	s := ScorePruningProfile(nil, bitpacked16(), 0.0)
	if s.Gain > 1.0 {
		t.Fatalf("unobserved profile, uniform data: gain %.3f, want <= 1", s.Gain)
	}
	var p obs.AccessProfile
	s2 := ScorePruningProfile(&p, bitpacked16(), 5.0) // clustering clamped to 1
	if s2.Gain > 2.1 {
		t.Fatalf("empty profile, clustered: gain %.3f, want <= ~2 (mask skip only)", s2.Gain)
	}
}
