package adapt

import "testing"

// TestScoreSharedScanUniformEnrolls pins the headline case: un-prunable
// uniform predicates (the zone index resolves nothing, every chunk folds)
// should enroll as soon as there is anyone to share the walk with.
func TestScoreSharedScanUniformEnrolls(t *testing.T) {
	cs := bitpacked16()
	for _, batch := range []int{2, 4, 16, 64} {
		s := ScoreSharedScan(cs, 1.0, 0.0, batch)
		if !s.Enroll {
			t.Errorf("uniform batch %d: should enroll (indep %.2f, shared %.2f)", batch, s.Independent, s.Shared)
		}
	}
}

// TestScoreSharedScanSoloBypasses pins the bootstrap rule: with no one to
// share with there is no walk to amortize, only wait overhead.
func TestScoreSharedScanSoloBypasses(t *testing.T) {
	if s := ScoreSharedScan(bitpacked16(), 1.0, 0.0, 1); s.Enroll {
		t.Errorf("solo query enrolled: %+v", s)
	}
}

// TestScoreSharedScanSelectiveBypasses pins the adaptive bypass: a highly
// selective zone-resolved predicate's independent scan sits near the
// zone-check floor, so the cooperative pass (which charges the query its
// share of the whole batch's walk plus the wraparound wait) must lose at
// every batch size.
func TestScoreSharedScanSelectiveBypasses(t *testing.T) {
	cs := bitpacked16()
	for _, batch := range []int{2, 8, 64, 1024} {
		s := ScoreSharedScan(cs, 0.05, 0.95, batch)
		if s.Enroll {
			t.Errorf("selective batch %d: should bypass (indep %.2f, shared %.2f)", batch, s.Independent, s.Shared)
		}
	}
}

// TestScoreSharedScanMonotonicInBatch checks a bigger batch never makes
// sharing look worse — the walk only amortizes further.
func TestScoreSharedScanMonotonicInBatch(t *testing.T) {
	cs := bitpacked16()
	prev := -1.0
	for batch := 1; batch <= 128; batch *= 2 {
		s := ScoreSharedScan(cs, 1.0, 0.0, batch)
		if prev >= 0 && s.Shared > prev {
			t.Fatalf("batch %d: shared cost %.3f rose above %.3f", batch, s.Shared, prev)
		}
		prev = s.Shared
	}
}
