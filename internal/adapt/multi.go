package adapt

import (
	"fmt"
	"sort"

	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/obs"
	"smartarrays/internal/perfmodel"
)

// Multi-array adaptivity. The paper's §6 limitations note: "our adaptivity
// is not yet extended to multiple smart arrays, such as those used in our
// PageRank experiments". This file implements that extension: a joint
// placement decision over a set of arrays with heterogeneous traffic,
// subject to per-socket memory capacity.
//
// The algorithm is coordinate descent with the performance model as the
// objective: start from the flexible all-interleaved configuration, then
// repeatedly sweep the arrays in descending traffic order, re-placing each
// one (among the capacity-feasible, trait-admissible placements) while
// holding the others fixed, until a sweep changes nothing. The model being
// cheap is what makes this practical — the same argument the paper makes
// for profile-driven decisions over exhaustive search.

// ArrayUsage describes one array's role in a workload iteration.
type ArrayUsage struct {
	// Name identifies the array in the decision output.
	Name string
	// PayloadBytes is the size of one copy (the capacity cost).
	PayloadBytes uint64
	// ScanBytes / RandomBytes / WriteBytes are the per-iteration traffic
	// volumes (random already amplified; see perfmodel.RandomReadBytes).
	ScanBytes   float64
	RandomBytes float64
	WriteBytes  float64
	// ReadOnly permits replication (Table 2: replication is only for
	// read-only data).
	ReadOnly bool
}

// MultiDecision is the chosen placement for one array.
type MultiDecision struct {
	Name      string
	Placement memsim.Placement
	Socket    int
}

// String renders the decision.
func (d MultiDecision) String() string {
	if d.Placement == memsim.SingleSocket {
		return fmt.Sprintf("%s: single socket %d", d.Name, d.Socket)
	}
	return fmt.Sprintf("%s: %v", d.Name, d.Placement)
}

// DecideMulti jointly places the arrays on the machine, given the
// workload's total instruction count per iteration and the per-socket
// memory capacity. It returns the decisions (aligned with usages) and the
// modeled result of the chosen configuration.
func DecideMulti(spec *machine.Spec, capPerSocket uint64, instructions float64, usages []ArrayUsage) ([]MultiDecision, perfmodel.Result) {
	ds, res, _, _ := decideMulti(spec, capPerSocket, instructions, usages)
	return ds, res
}

// DecideMultiRecorded is DecideMulti with tracing: one MultiDecisionEvent
// per joint decision, recording the per-array placements, the model-solve
// budget the search spent, and the modeled outcome. rec may be nil.
func DecideMultiRecorded(spec *machine.Spec, capPerSocket uint64, instructions float64, usages []ArrayUsage, rec *obs.Recorder) ([]MultiDecision, perfmodel.Result) {
	ds, res, evals, fits := decideMulti(spec, capPerSocket, instructions, usages)
	if rec != nil {
		ev := obs.MultiDecisionEvent{
			Machine:           spec.Name,
			CapPerSocketBytes: capPerSocket,
			Evaluations:       evals,
			ModeledSeconds:    res.Seconds,
			Bottleneck:        string(res.Bottleneck),
			FitsCapacity:      fits,
		}
		for _, d := range ds {
			ev.Decisions = append(ev.Decisions, obs.MultiArrayDecision{
				Name: d.Name, Placement: d.Placement.String(), Socket: d.Socket,
			})
		}
		rec.RecordMultiDecision(ev)
	}
	return ds, res
}

// decideMulti is the shared coordinate-descent core; it additionally
// reports how many model evaluations the search spent and whether the
// final configuration fits the capacity budget.
func decideMulti(spec *machine.Spec, capPerSocket uint64, instructions float64, usages []ArrayUsage) ([]MultiDecision, perfmodel.Result, int, bool) {
	n := len(usages)
	decisions := make([]MultiDecision, n)
	for i, u := range usages {
		decisions[i] = MultiDecision{Name: u.Name, Placement: memsim.Interleaved}
	}

	// Sweep order: heaviest traffic first (its placement matters most).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	traffic := func(u ArrayUsage) float64 { return u.ScanBytes + u.RandomBytes + u.WriteBytes }
	sort.Slice(order, func(a, b int) bool {
		return traffic(usages[order[a]]) > traffic(usages[order[b]])
	})

	evaluations := 0
	evaluate := func() perfmodel.Result {
		evaluations++
		return perfmodel.Solve(spec, buildMultiWorkload(instructions, usages, decisions))
	}

	best := evaluate()
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for _, i := range order {
			u := usages[i]
			current := decisions[i]
			for _, cand := range candidatePlacements(spec, u) {
				if cand == current {
					continue
				}
				decisions[i] = cand
				if !fitsCapacity(spec, capPerSocket, usages, decisions) {
					continue
				}
				if r := evaluate(); r.Seconds < best.Seconds-1e-15 {
					best = r
					current = cand
					improved = true
				}
			}
			decisions[i] = current
		}
		if !improved {
			break
		}
	}
	if !fitsCapacity(spec, capPerSocket, usages, decisions) {
		// The all-interleaved start itself exceeds capacity: nothing the
		// placement engine can do; report it as-is (the caller must shed
		// data or compress).
		return decisions, best, evaluations, false
	}
	return decisions, best, evaluations, true
}

// candidatePlacements enumerates the placements admissible for the array.
func candidatePlacements(spec *machine.Spec, u ArrayUsage) []MultiDecision {
	cands := []MultiDecision{
		{Name: u.Name, Placement: memsim.Interleaved},
	}
	for s := 0; s < spec.Sockets; s++ {
		cands = append(cands, MultiDecision{Name: u.Name, Placement: memsim.SingleSocket, Socket: s})
	}
	if u.ReadOnly {
		cands = append(cands, MultiDecision{Name: u.Name, Placement: memsim.Replicated})
	}
	return cands
}

// fitsCapacity checks the per-socket memory cost of a joint configuration.
func fitsCapacity(spec *machine.Spec, capPerSocket uint64, usages []ArrayUsage, decisions []MultiDecision) bool {
	perSocket := make([]uint64, spec.Sockets)
	for i, d := range decisions {
		bytes := usages[i].PayloadBytes
		switch d.Placement {
		case memsim.Replicated:
			for s := range perSocket {
				perSocket[s] += bytes
			}
		case memsim.SingleSocket:
			perSocket[d.Socket] += bytes
		default:
			per := bytes / uint64(spec.Sockets)
			for s := range perSocket {
				perSocket[s] += per
			}
		}
	}
	for _, used := range perSocket {
		if used > capPerSocket {
			return false
		}
	}
	return true
}

// buildMultiWorkload assembles the model input for a joint configuration.
func buildMultiWorkload(instructions float64, usages []ArrayUsage, decisions []MultiDecision) perfmodel.Workload {
	w := perfmodel.Workload{Instructions: instructions}
	for i, u := range usages {
		d := decisions[i]
		add := func(kind perfmodel.StreamKind, bytes float64) {
			if bytes > 0 {
				w.Streams = append(w.Streams, perfmodel.Stream{
					Kind: kind, Bytes: bytes, Placement: d.Placement, Socket: d.Socket,
				})
			}
		}
		add(perfmodel.Read, u.ScanBytes)
		add(perfmodel.Read, u.RandomBytes)
		add(perfmodel.Write, u.WriteBytes)
	}
	return w
}
