package adapt

import (
	"testing"

	"smartarrays/internal/bitpack"
	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/perfmodel"
)

// measureAggregation models the §6 measurement run — the two-array
// aggregation with the flexible initial configuration (uncompressed,
// interleaved) — and derives the profile, proposing compression at bits.
func measureAggregation(spec *machine.Spec, bits uint) *Profile {
	const elems = 4 * machine.GB / 8 // per array, paper scale
	codec := bitpack.MustNew(64)
	w := perfmodel.Workload{
		Instructions: 2 * elems * perfmodel.CostScan(64),
		Streams: []perfmodel.Stream{
			{Kind: perfmodel.Read, Bytes: float64(codec.CompressedBytes(elems)), Placement: memsim.Interleaved},
			{Kind: perfmodel.Read, Bytes: float64(codec.CompressedBytes(elems)), Placement: memsim.Interleaved},
		},
	}
	res := perfmodel.Solve(spec, w)
	return ProfileFromResult(spec, res, ProfileOpts{
		Accesses:              2 * elems,
		CompressedBits:        bits,
		UncompressedBits:      64,
		SpaceUncompressedRepl: true,
		SpaceCompressedRepl:   true,
	})
}

var scanTraits = Traits{
	ReadOnly:                         true,
	MostlyReads:                      true,
	MultipleLinearAccessesPerElement: true,
}

func TestStep1PicksReplicatedForReadOnlyScans(t *testing.T) {
	for _, spec := range []*machine.Spec{machine.X52Small(), machine.X52Large()} {
		p := measureAggregation(spec, 33)
		c := SelectUncompressedPlacement(scanTraits, p)
		if c.Placement != memsim.Replicated {
			t.Errorf("%s: uncompressed candidate = %v, want replicated (%s)", spec.Name, c.Placement, c.Reason)
		}
		cc, ok := SelectCompressedPlacement(scanTraits, p)
		if !ok || cc.Placement != memsim.Replicated || !cc.Compressed {
			t.Errorf("%s: compressed candidate = %v ok=%v, want replicated+compression", spec.Name, cc, ok)
		}
	}
}

func TestStep1NoReplicationWithoutSpace(t *testing.T) {
	p := measureAggregation(machine.X52Small(), 33)
	p.SpaceForUncompressedReplication = false
	c := SelectUncompressedPlacement(scanTraits, p)
	if c.Placement == memsim.Replicated {
		t.Errorf("replication chosen without space: %s", c.Reason)
	}
	// Compression can still replicate if compressed replicas fit —
	// Figure 13's point about the two space tests.
	cc, ok := SelectCompressedPlacement(scanTraits, p)
	if !ok || cc.Placement != memsim.Replicated {
		t.Errorf("compressed candidate = %v ok=%v, want replicated", cc, ok)
	}
}

func TestStep1NoReplicationForWritableData(t *testing.T) {
	p := measureAggregation(machine.X52Small(), 33)
	tr := scanTraits
	tr.ReadOnly = false
	if c := SelectUncompressedPlacement(tr, p); c.Placement == memsim.Replicated {
		t.Errorf("replication chosen for writable data: %s", c.Reason)
	}
}

func TestStep1NotMemoryBoundInterleaves(t *testing.T) {
	p := measureAggregation(machine.X52Small(), 33)
	p.MemoryBound = false
	if c := SelectUncompressedPlacement(scanTraits, p); c.Placement != memsim.Interleaved {
		t.Errorf("non-memory-bound candidate = %v, want interleaved", c.Placement)
	}
	if _, ok := SelectCompressedPlacement(scanTraits, p); ok {
		t.Error("compression admitted for a non-memory-bound workload")
	}
}

func TestStep1CompressionRejectsWriteHeavy(t *testing.T) {
	p := measureAggregation(machine.X52Small(), 33)
	tr := scanTraits
	tr.MostlyReads = false
	if _, ok := SelectCompressedPlacement(tr, p); ok {
		t.Error("compression admitted for a write-heavy workload")
	}
}

func TestStep1CompressionRejectsRandomHeavy(t *testing.T) {
	p := measureAggregation(machine.X52Small(), 33)
	p.SignificantRandomAccesses = true
	tr := scanTraits // no MultipleRandomAccessesPerElement
	if _, ok := SelectCompressedPlacement(tr, p); ok {
		t.Error("compression admitted for one-shot random accesses")
	}
}

func TestSingleSocketBeneficialRequiresHighRatio(t *testing.T) {
	// A machine whose interconnect is nearly as fast as memory: single
	// socket never wins.
	p := &Profile{
		MemoryBound:       true,
		ExecCurrent:       1e9,
		ExecMax:           100e9,
		BWCurrentMemory:   30e9,
		BWMaxMemory:       40e9,
		BWMaxInterconnect: 35e9,
	}
	if singleSocketBeneficial(p) {
		// speedupLocal = min(100, (40-35)/30) = 0.17; remote = 1.17; avg < 1
		t.Error("single socket should not be beneficial with fast interconnect")
	}
	// Pathological: enormous headroom on the local socket.
	p2 := &Profile{
		MemoryBound:       true,
		ExecCurrent:       1e9,
		ExecMax:           100e9,
		BWCurrentMemory:   5e9,
		BWMaxMemory:       50e9,
		BWMaxInterconnect: 8e9,
	}
	if !singleSocketBeneficial(p2) {
		// local = min(100, (50-8)/5=8.4) = 8.4; remote = 1.6; avg = 5 > 1
		t.Error("single socket should be beneficial with huge local headroom")
	}
}

// TestDecideMatchesGroundTruthOnBothMachines is the heart of §6: on the
// 8-core machine compression must be rejected (no spare compute), on the
// 18-core machine the compressed replicated configuration must win.
func TestDecideMatchesGroundTruth(t *testing.T) {
	small := Decide(machine.X52Small(), scanTraits, measureAggregation(machine.X52Small(), 33))
	if small.Compressed || small.Placement != memsim.Replicated {
		t.Errorf("8-core decision = %v, want uncompressed replicated", small)
	}
	large := Decide(machine.X52Large(), scanTraits, measureAggregation(machine.X52Large(), 33))
	if !large.Compressed || large.Placement != memsim.Replicated {
		t.Errorf("18-core decision = %v, want replicated + compression", large)
	}
	if large.PredictedSpeedup <= 1 {
		t.Errorf("18-core predicted speedup = %v, want > 1", large.PredictedSpeedup)
	}
}

func TestDecideHighCompressionAlwaysWinsOnLarge(t *testing.T) {
	// 10-bit data compresses 6.4x: even more clearly a win on the 18-core
	// machine (the paper's up-to-4x case).
	c := Decide(machine.X52Large(), scanTraits, measureAggregation(machine.X52Large(), 10))
	if !c.Compressed {
		t.Errorf("18-core 10-bit decision = %v, want compression", c)
	}
}

func TestProfileFromResultDerivations(t *testing.T) {
	spec := machine.X52Small()
	p := measureAggregation(spec, 33)
	if !p.MemoryBound {
		t.Error("aggregation measurement should be memory bound")
	}
	if p.SignificantRandomAccesses {
		t.Error("aggregation has no random accesses")
	}
	if p.ExecMax != spec.ExecRate() {
		t.Errorf("ExecMax = %v, want %v", p.ExecMax, spec.ExecRate())
	}
	if p.CompressionRatio <= 0.5 || p.CompressionRatio >= 0.53 {
		t.Errorf("33/64 compression ratio = %v, want ~0.516", p.CompressionRatio)
	}
	if p.CostPerCompressedAccess <= 0 {
		t.Errorf("compressed access cost = %v, want > 0", p.CostPerCompressedAccess)
	}
	if p.ElemBytes != 8 {
		t.Errorf("ElemBytes = %v, want 8", p.ElemBytes)
	}
}

func TestProfileRandomFractionThreshold(t *testing.T) {
	spec := machine.X52Small()
	res := perfmodel.Result{Seconds: 1, Bottleneck: perfmodel.BottleneckMemory,
		Instructions: 1e9, TotalBytes: 1e9}
	p := ProfileFromResult(spec, res, ProfileOpts{Accesses: 100, RandomAccesses: 5})
	if p.SignificantRandomAccesses {
		t.Error("5% random should not be significant")
	}
	p = ProfileFromResult(spec, res, ProfileOpts{Accesses: 100, RandomAccesses: 50})
	if !p.SignificantRandomAccesses {
		t.Error("50% random should be significant")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Placement: memsim.Replicated, Compressed: true}
	if got := c.String(); got != "replicated + compression" {
		t.Errorf("String() = %q", got)
	}
}
