package minivm

import (
	"testing"
	"testing/quick"
)

// runBoth runs a program through both tiers and checks they agree.
func runBoth(t *testing.T, prog Program, bindings []*ArrayBinding, bindIters func(vm *VM) error) uint64 {
	t.Helper()
	results := make([]uint64, 2)
	for tier := 0; tier < 2; tier++ {
		vm, err := New(prog, bindings)
		if err != nil {
			t.Fatal(err)
		}
		if bindIters != nil {
			if err := bindIters(vm); err != nil {
				t.Fatal(err)
			}
		}
		if tier == 0 {
			results[0], err = vm.Interpret()
		} else {
			var cp *Compiled
			cp, err = vm.Compile()
			if err == nil {
				results[1], err = cp.Run()
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if results[0] != results[1] {
		t.Fatalf("tiers disagree: interpreted %d, compiled %d", results[0], results[1])
	}
	return results[0]
}

func TestExtendedArithmeticOps(t *testing.T) {
	// Compute ((7*6) - 2) & 0xFC | 1 >> 1 step by step.
	prog := Program{Code: []Instr{
		{Op: OpConst, A: 0, Imm: 7},
		{Op: OpConst, A: 1, Imm: 6},
		{Op: OpMul, A: 2, B: 0, C: 1}, // 42
		{Op: OpConst, A: 3, Imm: 2},
		{Op: OpSub, A: 2, B: 2, C: 3}, // 40
		{Op: OpConst, A: 3, Imm: 0xFC},
		{Op: OpAnd, A: 2, B: 2, C: 3}, // 40
		{Op: OpConst, A: 3, Imm: 1},
		{Op: OpOr, A: 2, B: 2, C: 3},    // 41
		{Op: OpShr, A: 2, B: 2, Imm: 1}, // 20
		{Op: OpHalt, A: 2},
	}}
	if got := runBoth(t, prog, nil, nil); got != 20 {
		t.Errorf("result = %d, want 20", got)
	}
}

func TestJzAndGtImm(t *testing.T) {
	// if 5 > 3 then 100 else 200.
	prog := Program{Code: []Instr{
		{Op: OpConst, A: 0, Imm: 5},
		{Op: OpGtImm, A: 1, B: 0, Imm: 3},
		{Op: OpJz, A: 1, Imm: 5},
		{Op: OpConst, A: 2, Imm: 100},
		{Op: OpHalt, A: 2},
		{Op: OpConst, A: 2, Imm: 200}, // pc 5
		{Op: OpHalt, A: 2},
	}}
	if got := runBoth(t, prog, nil, nil); got != 100 {
		t.Errorf("taken branch = %d, want 100", got)
	}
	prog.Code[0].Imm = 2 // 2 > 3 is false -> else branch
	if got := runBoth(t, prog, nil, nil); got != 200 {
		t.Errorf("fallthrough branch = %d, want 200", got)
	}
}

func TestShrMasksShiftAmount(t *testing.T) {
	prog := Program{Code: []Instr{
		{Op: OpConst, A: 0, Imm: 1 << 40},
		{Op: OpShr, A: 0, B: 0, Imm: 64 + 40}, // masked to 40
		{Op: OpHalt, A: 0},
	}}
	if got := runBoth(t, prog, nil, nil); got != 1 {
		t.Errorf("masked shift = %d, want 1", got)
	}
}

func TestFilteredSumProgram(t *testing.T) {
	const n = 500
	const threshold = 700
	hsV := newHarness(t, n, 10)
	hsW := newHarness(t, n, 16)
	var want uint64
	for i := 0; i < n; i++ {
		if hsV.data[i] > threshold {
			want += hsV.data[i] * hsW.data[i]
		}
	}
	prog := FilteredSumProgram(n, threshold)
	bindings := []*ArrayBinding{hsV.binding(t, PathSmart), hsW.binding(t, PathSmart)}
	got := runBoth(t, prog, bindings, func(vm *VM) error {
		if err := vm.BindIter(0, 0, 0); err != nil {
			return err
		}
		return vm.BindIter(1, 1, 0)
	})
	if got != want {
		t.Errorf("filtered sum = %d, want %d", got, want)
	}
}

// Property: the guest filtered sum matches the host computation for any
// threshold, through the managed path.
func TestQuickFilteredSum(t *testing.T) {
	f := func(threshold uint16) bool {
		const n = 200
		values := make([]uint64, n)
		weights := make([]uint64, n)
		var want uint64
		for i := range values {
			values[i] = uint64(i * 37 % 1024)
			weights[i] = uint64(i % 64)
			if values[i] > uint64(threshold%1024) {
				want += values[i] * weights[i]
			}
		}
		vm, err := New(FilteredSumProgram(n, uint64(threshold%1024)), []*ArrayBinding{
			{Path: PathManaged, Managed: values},
			{Path: PathManaged, Managed: weights},
		})
		if err != nil {
			return false
		}
		if err := vm.BindIter(0, 0, 0); err != nil {
			return false
		}
		if err := vm.BindIter(1, 1, 0); err != nil {
			return false
		}
		cp, err := vm.Compile()
		if err != nil {
			return false
		}
		got, err := cp.Run()
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
