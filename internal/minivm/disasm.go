package minivm

import (
	"fmt"
	"strings"
)

// Disassembly of guest programs, for debugging and program dumps.

// opName returns the mnemonic for an opcode.
func opName(op Op) string {
	switch op {
	case OpConst:
		return "const"
	case OpMove:
		return "move"
	case OpAdd:
		return "add"
	case OpAddImm:
		return "addi"
	case OpLoad:
		return "load"
	case OpIterGet:
		return "iget"
	case OpIterNext:
		return "inext"
	case OpLt:
		return "lt"
	case OpJnz:
		return "jnz"
	case OpJmp:
		return "jmp"
	case OpHalt:
		return "halt"
	case OpMul:
		return "mul"
	case OpSub:
		return "sub"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpShr:
		return "shr"
	case OpJz:
		return "jz"
	case OpGtImm:
		return "gti"
	default:
		return fmt.Sprintf("op%d", int(op))
	}
}

// Disasm renders one instruction.
func Disasm(in Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("const  r%d, %d", in.A, in.Imm)
	case OpMove:
		return fmt.Sprintf("move   r%d, r%d", in.A, in.B)
	case OpAdd, OpMul, OpSub, OpAnd, OpOr, OpLt:
		return fmt.Sprintf("%-6s r%d, r%d, r%d", opName(in.Op), in.A, in.B, in.C)
	case OpAddImm:
		return fmt.Sprintf("addi   r%d, r%d, %d", in.A, in.B, in.Imm)
	case OpShr:
		return fmt.Sprintf("shr    r%d, r%d, %d", in.A, in.B, in.Imm&63)
	case OpGtImm:
		return fmt.Sprintf("gti    r%d, r%d, %d", in.A, in.B, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load   r%d, arr%d[r%d]", in.A, in.B, in.C)
	case OpIterGet:
		return fmt.Sprintf("iget   r%d, it%d", in.A, in.B)
	case OpIterNext:
		return fmt.Sprintf("inext  it%d", in.B)
	case OpJnz:
		return fmt.Sprintf("jnz    r%d, @%d", in.A, in.Imm)
	case OpJz:
		return fmt.Sprintf("jz     r%d, @%d", in.A, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp    @%d", in.Imm)
	case OpHalt:
		return fmt.Sprintf("halt   r%d", in.A)
	default:
		return opName(in.Op)
	}
}

// String renders the whole program with pc labels.
func (p Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; arrays=%d iters=%d\n", p.Arrays, p.Iters)
	for pc, in := range p.Code {
		fmt.Fprintf(&sb, "%3d: %s\n", pc, Disasm(in))
	}
	return sb.String()
}
