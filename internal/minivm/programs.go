package minivm

// Program builders for the workloads the paper's figures run in the guest
// language. Programs are plain bytecode: the same program text runs over
// any access path, which is the interoperability point — only the binding
// changes.

// Registers used by the canonical loops.
const (
	regSum  = 0
	regI    = 1
	regN    = 2
	regTmp  = 3
	regCond = 4
	regTmp2 = 5
)

// SumIterProgram builds the paper's Function 4 aggregation over iterator
// slot 0 of array slot 0: sum += it.get(); it.next() for n elements.
func SumIterProgram(n uint64) Program {
	return Program{
		Arrays: 1,
		Iters:  1,
		Code: []Instr{
			{Op: OpConst, A: regSum, Imm: 0},
			{Op: OpConst, A: regI, Imm: 0},
			{Op: OpConst, A: regN, Imm: n},
			// loop: (pc 3)
			{Op: OpIterGet, A: regTmp, B: 0},
			{Op: OpAdd, A: regSum, B: regSum, C: regTmp},
			{Op: OpIterNext, B: 0},
			{Op: OpAddImm, A: regI, B: regI, Imm: 1},
			{Op: OpLt, A: regCond, B: regI, C: regN},
			{Op: OpJnz, A: regCond, Imm: 3},
			{Op: OpHalt, A: regSum},
		},
	}
}

// SumTwoIterProgram aggregates two arrays element-wise (the §5.1 workload
// sum += a1[i] + a2[i]) over iterator slots 0 and 1.
func SumTwoIterProgram(n uint64) Program {
	return Program{
		Arrays: 2,
		Iters:  2,
		Code: []Instr{
			{Op: OpConst, A: regSum, Imm: 0},
			{Op: OpConst, A: regI, Imm: 0},
			{Op: OpConst, A: regN, Imm: n},
			// loop: (pc 3)
			{Op: OpIterGet, A: regTmp, B: 0},
			{Op: OpIterGet, A: regTmp2, B: 1},
			{Op: OpAdd, A: regTmp, B: regTmp, C: regTmp2},
			{Op: OpAdd, A: regSum, B: regSum, C: regTmp},
			{Op: OpIterNext, B: 0},
			{Op: OpIterNext, B: 1},
			{Op: OpAddImm, A: regI, B: regI, Imm: 1},
			{Op: OpLt, A: regCond, B: regI, C: regN},
			{Op: OpJnz, A: regCond, Imm: 3},
			{Op: OpHalt, A: regSum},
		},
	}
}

// SumIndexedProgram aggregates array slot 0 with random-access loads
// (regs-indexed Get rather than an iterator) — the shape JNI is worst at.
func SumIndexedProgram(n uint64) Program {
	return Program{
		Arrays: 1,
		Code: []Instr{
			{Op: OpConst, A: regSum, Imm: 0},
			{Op: OpConst, A: regI, Imm: 0},
			{Op: OpConst, A: regN, Imm: n},
			// loop: (pc 3)
			{Op: OpLoad, A: regTmp, B: 0, C: regI},
			{Op: OpAdd, A: regSum, B: regSum, C: regTmp},
			{Op: OpAddImm, A: regI, B: regI, Imm: 1},
			{Op: OpLt, A: regCond, B: regI, C: regN},
			{Op: OpJnz, A: regCond, Imm: 3},
			{Op: OpHalt, A: regSum},
		},
	}
}
