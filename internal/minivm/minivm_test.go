package minivm

import (
	"testing"

	"smartarrays/internal/interop"
	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
)

// harness builds an entry-point surface plus a filled smart array and the
// reference sum of its first n elements.
type harness struct {
	ep     *interop.EntryPoints
	handle int64
	data   []uint64
	sum    uint64
}

func newHarness(t *testing.T, n uint64, bits uint) *harness {
	t.Helper()
	mem := memsim.New(machine.X52Small())
	ep := interop.NewEntryPoints(mem)
	h, err := ep.SmartArrayAllocate(n, bits, memsim.Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]uint64, n)
	var sum uint64
	mask := uint64(1)<<bits - 1
	if bits == 64 {
		mask = ^uint64(0)
	}
	for i := uint64(0); i < n; i++ {
		v := (i*2654435761 + 1) & mask
		data[i] = v
		sum += v
		if err := ep.SmartArrayInit(h, 0, i, v); err != nil {
			t.Fatal(err)
		}
	}
	return &harness{ep: ep, handle: h, data: data, sum: sum}
}

func (hs *harness) binding(t *testing.T, path AccessPath) *ArrayBinding {
	t.Helper()
	b := &ArrayBinding{Path: path, Socket: 0}
	switch path {
	case PathManaged:
		b.Managed = hs.data
	case PathJNI:
		b.EP = hs.ep
		b.JNI = interop.NewJNIBoundary(hs.ep)
		b.Handle = hs.handle
	case PathUnsafe:
		words, err := hs.ep.UnsafeWords(hs.handle, 0)
		if err != nil {
			t.Fatal(err)
		}
		b.Unsafe = words
	case PathSmart:
		b.EP = hs.ep
		b.Handle = hs.handle
	}
	return b
}

func TestInterpretSumAllPaths(t *testing.T) {
	const n = 500
	hs := newHarness(t, n, 64) // 64-bit so unsafe raw words equal elements
	for _, path := range []AccessPath{PathManaged, PathJNI, PathUnsafe, PathSmart} {
		vm, err := New(SumIterProgram(n), []*ArrayBinding{hs.binding(t, path)})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.BindIter(0, 0, 0); err != nil {
			t.Fatal(err)
		}
		got, err := vm.Interpret()
		if err != nil {
			t.Fatalf("path %v: %v", path, err)
		}
		if got != hs.sum {
			t.Errorf("path %v: sum = %d, want %d", path, got, hs.sum)
		}
	}
}

func TestCompiledSumAllPaths(t *testing.T) {
	const n = 500
	for _, bits := range []uint{32, 33, 64} {
		hs := newHarness(t, n, bits)
		paths := []AccessPath{PathManaged, PathJNI, PathSmart}
		if bits == 64 {
			paths = append(paths, PathUnsafe)
		}
		for _, path := range paths {
			vm, err := New(SumIterProgram(n), []*ArrayBinding{hs.binding(t, path)})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.BindIter(0, 0, 0); err != nil {
				t.Fatal(err)
			}
			cp, err := vm.Compile()
			if err != nil {
				t.Fatal(err)
			}
			got, err := cp.Run()
			if err != nil {
				t.Fatalf("bits=%d path %v: %v", bits, path, err)
			}
			if got != hs.sum {
				t.Errorf("bits=%d path %v: sum = %d, want %d", bits, path, got, hs.sum)
			}
		}
	}
}

func TestIndexedLoadsAllPaths(t *testing.T) {
	const n = 300
	hs := newHarness(t, n, 33)
	for _, path := range []AccessPath{PathManaged, PathJNI, PathSmart} {
		vm, err := New(SumIndexedProgram(n), []*ArrayBinding{hs.binding(t, path)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vm.Interpret()
		if err != nil {
			t.Fatalf("path %v: %v", path, err)
		}
		if got != hs.sum {
			t.Errorf("path %v: sum = %d, want %d", path, got, hs.sum)
		}
		cp, err := vm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		got, err = cp.Run()
		if err != nil || got != hs.sum {
			t.Errorf("compiled path %v: sum = %d, %v; want %d", path, got, err, hs.sum)
		}
	}
}

func TestTwoArrayAggregation(t *testing.T) {
	const n = 256
	hs1 := newHarness(t, n, 33)
	hs2 := newHarness(t, n, 10)
	want := hs1.sum + hs2.sum
	vm, err := New(SumTwoIterProgram(n), []*ArrayBinding{
		hs1.binding(t, PathSmart), hs2.binding(t, PathSmart),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.BindIter(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := vm.BindIter(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	cp, err := vm.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Run()
	if err != nil || got != want {
		t.Errorf("two-array sum = %d, %v; want %d", got, err, want)
	}
}

func TestUnsafePathLosesSmartFunctionality(t *testing.T) {
	// The paper's point about unsafe: raw words of a compressed array are
	// NOT the elements. The unsafe path must produce a different (wrong)
	// sum for a 33-bit array, while the smart path stays correct.
	const n = 128
	hs := newHarness(t, n, 33)
	// Scan the first 64 positions only: a 128-element 33-bit array packs
	// into 66 words, so a raw scan past that would fault — itself a
	// demonstration of what unsafe loses.
	const scan = 64
	unsafeVM, err := New(SumIterProgram(scan), []*ArrayBinding{hs.binding(t, PathUnsafe)})
	if err != nil {
		t.Fatal(err)
	}
	if err := unsafeVM.BindIter(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := unsafeVM.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range hs.data[:scan] {
		want += v
	}
	if got == want {
		t.Error("unsafe raw-word scan of a compressed array accidentally produced the right sum")
	}
}

func TestNewRejectsBadBindings(t *testing.T) {
	if _, err := New(SumIterProgram(10), nil); err == nil {
		t.Error("missing bindings should fail")
	}
	if _, err := New(SumIterProgram(10), []*ArrayBinding{{Path: PathManaged}}); err == nil {
		t.Error("managed binding without storage should fail")
	}
	if _, err := New(SumIterProgram(10), []*ArrayBinding{{Path: PathJNI}}); err == nil {
		t.Error("jni binding without boundary should fail")
	}
	if _, err := New(SumIterProgram(10), []*ArrayBinding{{Path: AccessPath(77)}}); err == nil {
		t.Error("unknown path should fail")
	}
}

func TestBindIterValidation(t *testing.T) {
	hs := newHarness(t, 10, 64)
	vm, err := New(SumIterProgram(10), []*ArrayBinding{hs.binding(t, PathSmart)})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.BindIter(5, 0, 0); err == nil {
		t.Error("bad iterator slot should fail")
	}
	if err := vm.BindIter(0, 3, 0); err == nil {
		t.Error("bad array slot should fail")
	}
}

func TestCompileRequiresBoundIterators(t *testing.T) {
	hs := newHarness(t, 10, 64)
	vm, err := New(SumIterProgram(10), []*ArrayBinding{hs.binding(t, PathSmart)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Compile(); err == nil {
		t.Error("compiling with unbound iterator should fail")
	}
}

func TestInterpretIllegalProgram(t *testing.T) {
	vm, err := New(Program{Code: []Instr{{Op: Op(99)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Interpret(); err == nil {
		t.Error("illegal opcode should fail")
	}
	vm2, _ := New(Program{Code: []Instr{{Op: OpConst, A: 0, Imm: 1}}}, nil)
	if _, err := vm2.Interpret(); err == nil {
		t.Error("falling off the end should fail")
	}
}

func TestAccessPathString(t *testing.T) {
	for p, want := range map[AccessPath]string{
		PathManaged: "managed", PathJNI: "jni", PathUnsafe: "unsafe", PathSmart: "smartarray",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestJNICrossingsCounted(t *testing.T) {
	const n = 100
	hs := newHarness(t, n, 64)
	b := hs.binding(t, PathJNI)
	vm, err := New(SumIterProgram(n), []*ArrayBinding{b})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.BindIter(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Interpret(); err != nil {
		t.Fatal(err)
	}
	// At least two crossings per element (get + next) plus the iterator
	// allocation.
	if b.JNI.CallsMade < 2*n {
		t.Errorf("JNI crossings = %d, want >= %d", b.JNI.CallsMade, 2*n)
	}
}
