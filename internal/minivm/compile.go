package minivm

import (
	"errors"
	"fmt"

	"smartarrays/internal/core"
)

// compiledFn executes one instruction and returns the next pc.
type compiledFn func(vm *VM) (next int, err error)

// Compiled is a program lowered to closure-threaded code with array and
// iterator accesses specialized against their bindings — the VM's
// equivalent of GraalVM just-in-time compiling the guest loop together
// with the inlined smart-array implementation (§3.2, §4.3).
type Compiled struct {
	vm   *VM
	code []compiledFn
}

// Compile lowers the VM's program. It must be called after all iterator
// slots used by the program are bound, because iterator ops specialize on
// the binding: a PathSmart iterator op type-switches once on the concrete
// iterator (U64/U32/Compressed) and emits a closure with no interface
// dispatch — the profiled-bits fast path; a PathJNI op emits the boundary
// call; managed/unsafe ops emit direct slice indexing.
func (vm *VM) Compile() (*Compiled, error) {
	code := make([]compiledFn, len(vm.prog.Code))
	for pc, in := range vm.prog.Code {
		fn, err := vm.compileInstr(pc, in)
		if err != nil {
			return nil, fmt.Errorf("minivm: pc %d: %w", pc, err)
		}
		code[pc] = fn
	}
	return &Compiled{vm: vm, code: code}, nil
}

func (vm *VM) compileInstr(pc int, in Instr) (compiledFn, error) {
	next := pc + 1
	a, b, c := in.A, in.B, in.C
	imm := in.Imm
	switch in.Op {
	case OpConst:
		return func(vm *VM) (int, error) { vm.regs[a] = imm; return next, nil }, nil
	case OpMove:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b]; return next, nil }, nil
	case OpAdd:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] + vm.regs[c]; return next, nil }, nil
	case OpAddImm:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] + imm; return next, nil }, nil
	case OpLt:
		return func(vm *VM) (int, error) {
			if vm.regs[b] < vm.regs[c] {
				vm.regs[a] = 1
			} else {
				vm.regs[a] = 0
			}
			return next, nil
		}, nil
	case OpJnz:
		target := int(imm)
		return func(vm *VM) (int, error) {
			if vm.regs[a] != 0 {
				return target, nil
			}
			return next, nil
		}, nil
	case OpJmp:
		target := int(imm)
		return func(vm *VM) (int, error) { return target, nil }, nil
	case OpHalt:
		return func(vm *VM) (int, error) { return -1, nil }, nil
	case OpLoad:
		return vm.compileLoad(a, int(b), c, next)
	case OpIterGet:
		return vm.compileIterGet(a, int(b), next)
	case OpIterNext:
		return vm.compileIterNext(int(b), next)
	default:
		if fn := vm.compileExt(pc, in); fn != nil {
			return fn, nil
		}
		return nil, fmt.Errorf("illegal opcode %d", in.Op)
	}
}

func (vm *VM) compileLoad(a uint8, slot int, c uint8, next int) (compiledFn, error) {
	if slot < 0 || slot >= len(vm.bindings) {
		return nil, fmt.Errorf("array slot %d out of range", slot)
	}
	bind := vm.bindings[slot]
	switch bind.Path {
	case PathManaged:
		data := bind.Managed
		return func(vm *VM) (int, error) { vm.regs[a] = data[vm.regs[c]]; return next, nil }, nil
	case PathUnsafe:
		data := bind.Unsafe
		return func(vm *VM) (int, error) { vm.regs[a] = data[vm.regs[c]]; return next, nil }, nil
	case PathJNI:
		j, h, s := bind.JNI, bind.Handle, bind.Socket
		return func(vm *VM) (int, error) {
			v, err := j.Get(h, s, vm.regs[c])
			vm.regs[a] = v
			return next, err
		}, nil
	default: // PathSmart: resolve once, profile the width, inline the access
		arr, err := bind.EP.ResolveArray(bind.Handle)
		if err != nil {
			return nil, err
		}
		replica := arr.GetReplica(bind.Socket)
		switch arr.Bits() {
		case 64:
			return func(vm *VM) (int, error) { vm.regs[a] = replica[vm.regs[c]]; return next, nil }, nil
		case 32:
			return func(vm *VM) (int, error) {
				i := vm.regs[c]
				vm.regs[a] = (replica[i>>1] >> ((i & 1) * 32)) & 0xFFFFFFFF
				return next, nil
			}, nil
		default:
			codec := arr.Codec()
			return func(vm *VM) (int, error) {
				vm.regs[a] = codec.Get(replica, vm.regs[c])
				return next, nil
			}, nil
		}
	}
}

func (vm *VM) compileIterGet(a uint8, slot int, next int) (compiledFn, error) {
	if slot < 0 || slot >= len(vm.iters) {
		return nil, fmt.Errorf("iterator slot %d out of range", slot)
	}
	st := &vm.iters[slot]
	if st.binding == nil {
		return nil, errors.New("iterator slot unbound at compile time")
	}
	switch st.binding.Path {
	case PathManaged:
		data := st.binding.Managed
		return func(vm *VM) (int, error) { vm.regs[a] = data[vm.iters[slot].pos]; return next, nil }, nil
	case PathUnsafe:
		data := st.binding.Unsafe
		return func(vm *VM) (int, error) { vm.regs[a] = data[vm.iters[slot].pos]; return next, nil }, nil
	case PathJNI:
		j, h := st.binding.JNI, st.handle
		return func(vm *VM) (int, error) {
			v, err := j.IterGet(h)
			vm.regs[a] = v
			return next, err
		}, nil
	default: // PathSmart: fuse the concrete iterator, no interface dispatch
		switch it := st.it.(type) {
		case *core.U64Iterator:
			return func(vm *VM) (int, error) { vm.regs[a] = it.Get(); return next, nil }, nil
		case *core.U32Iterator:
			return func(vm *VM) (int, error) { vm.regs[a] = it.Get(); return next, nil }, nil
		case *core.CompressedIterator:
			return func(vm *VM) (int, error) { vm.regs[a] = it.Get(); return next, nil }, nil
		default:
			return func(vm *VM) (int, error) { vm.regs[a] = st.it.Get(); return next, nil }, nil
		}
	}
}

func (vm *VM) compileIterNext(slot int, next int) (compiledFn, error) {
	if slot < 0 || slot >= len(vm.iters) {
		return nil, fmt.Errorf("iterator slot %d out of range", slot)
	}
	st := &vm.iters[slot]
	if st.binding == nil {
		return nil, errors.New("iterator slot unbound at compile time")
	}
	switch st.binding.Path {
	case PathManaged, PathUnsafe:
		return func(vm *VM) (int, error) { vm.iters[slot].pos++; return next, nil }, nil
	case PathJNI:
		j, h := st.binding.JNI, st.handle
		return func(vm *VM) (int, error) { return next, j.IterNext(h) }, nil
	default:
		switch it := st.it.(type) {
		case *core.U64Iterator:
			return func(vm *VM) (int, error) { it.Next(); return next, nil }, nil
		case *core.U32Iterator:
			return func(vm *VM) (int, error) { it.Next(); return next, nil }, nil
		case *core.CompressedIterator:
			return func(vm *VM) (int, error) { it.Next(); return next, nil }, nil
		default:
			return func(vm *VM) (int, error) { st.it.Next(); return next, nil }, nil
		}
	}
}

// Run executes the compiled code and returns the halt register's value.
func (cp *Compiled) Run() (uint64, error) {
	vm := cp.vm
	pc := 0
	var haltReg uint8
	// Find the halt register lazily: OpHalt closures return -1; the result
	// register is recorded from the program text.
	for _, in := range vm.prog.Code {
		if in.Op == OpHalt {
			haltReg = in.A
			break
		}
	}
	for pc >= 0 && pc < len(cp.code) {
		next, err := cp.code[pc](vm)
		if err != nil {
			return 0, err
		}
		pc = next
	}
	return vm.regs[haltReg], nil
}
