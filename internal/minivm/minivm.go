// Package minivm is a small guest-language virtual machine standing in for
// the paper's managed runtime (Java on the GraalVM, §2.4, §3.2).
//
// The paper's language-interoperability claim is about cost structures, not
// about Java specifically: a guest language accessing native smart arrays
// can be (a) slow but interoperable via JNI-style per-call marshalling,
// (b) fast but not interoperable via unsafe raw memory access, or (c) both
// fast and interoperable when the runtime can inline the native
// implementation into guest code (GraalVM + Sulong). This VM reproduces all
// three regimes with really-executed code:
//
//   - programs are register bytecode, run by a switch interpreter
//     (Interpret) or a closure-threading compiler (Compile) — the
//     interpreted/compiled tiers of a managed runtime;
//   - array accesses go through a per-array binding whose AccessPath
//     selects managed storage, the JNI boundary, raw unsafe words, or the
//     inlined smart-array fast path;
//   - Compile specializes array ops against the binding's profiled bit
//     width, the analogue of GraalVM.profile(smartArray.getBits()) letting
//     the JIT fold the width to a constant (§4.3).
package minivm

import (
	"errors"
	"fmt"

	"smartarrays/internal/core"
	"smartarrays/internal/interop"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. A/B/C are register indices unless stated otherwise.
const (
	// OpConst: regs[A] = Imm.
	OpConst Op = iota
	// OpMove: regs[A] = regs[B].
	OpMove
	// OpAdd: regs[A] = regs[B] + regs[C].
	OpAdd
	// OpAddImm: regs[A] = regs[B] + Imm.
	OpAddImm
	// OpLoad: regs[A] = arrays[B][regs[C]] via the binding's access path.
	OpLoad
	// OpIterGet: regs[A] = iterator B's current element.
	OpIterGet
	// OpIterNext: advance iterator B.
	OpIterNext
	// OpLt: regs[A] = 1 if regs[B] < regs[C] else 0.
	OpLt
	// OpJnz: if regs[A] != 0, jump to absolute pc Imm.
	OpJnz
	// OpJmp: jump to absolute pc Imm.
	OpJmp
	// OpHalt: stop; the value of regs[A] is the program result.
	OpHalt
)

// Instr is one bytecode instruction.
type Instr struct {
	Op      Op
	A, B, C uint8
	Imm     uint64
}

// NumRegs is the register file size.
const NumRegs = 16

// Program is a compiled unit: bytecode plus the array/iterator slot counts
// it expects to be bound.
type Program struct {
	Code   []Instr
	Arrays int
	Iters  int
}

// AccessPath selects how the VM reaches an array (Figure 3's rows).
type AccessPath int

const (
	// PathManaged: the array lives in the VM's own heap — the "plain Java
	// array" baseline. No smart functionality.
	PathManaged AccessPath = iota
	// PathJNI: every access crosses the marshalled JNI boundary.
	PathJNI
	// PathUnsafe: raw access to the native words. Fast, but bypasses
	// replica selection and decompression — only valid for uncompressed
	// single-copy arrays, exactly the paper's criticism.
	PathUnsafe
	// PathSmart: the inlined smart-array path — native logic compiled
	// together with guest code, with the bit width profiled to a constant.
	PathSmart
)

// String names the path as in Figure 3.
func (p AccessPath) String() string {
	switch p {
	case PathManaged:
		return "managed"
	case PathJNI:
		return "jni"
	case PathUnsafe:
		return "unsafe"
	case PathSmart:
		return "smartarray"
	default:
		return fmt.Sprintf("AccessPath(%d)", int(p))
	}
}

// ArrayBinding connects a program's array slot to storage via some path.
type ArrayBinding struct {
	Path AccessPath
	// Managed is the VM-heap storage for PathManaged.
	Managed []uint64
	// Handle plus EP serve PathJNI and PathSmart; JNI is the per-thread
	// boundary for PathJNI.
	Handle int64
	EP     *interop.EntryPoints
	JNI    *interop.JNIBoundary
	// Unsafe is the raw word slice for PathUnsafe.
	Unsafe []uint64
	// Socket is the reader's socket for replica selection.
	Socket int
}

// VM executes programs against bound arrays.
type VM struct {
	prog     Program
	bindings []*ArrayBinding
	iters    []iterState
	regs     [NumRegs]uint64
}

type iterState struct {
	binding *ArrayBinding
	// native iterator for PathSmart (inlined) — concrete type captured at
	// bind time so compiled code can fuse it.
	it core.Iterator
	// handle for PathJNI.
	handle int64
	// position for PathManaged / PathUnsafe.
	pos uint64
}

// New creates a VM for the program with the given array bindings. Iterator
// slots are created with Bind Iter.
func New(prog Program, bindings []*ArrayBinding) (*VM, error) {
	if len(bindings) != prog.Arrays {
		return nil, fmt.Errorf("minivm: program wants %d arrays, got %d bindings", prog.Arrays, len(bindings))
	}
	for i, b := range bindings {
		if err := validateBinding(b); err != nil {
			return nil, fmt.Errorf("minivm: binding %d: %w", i, err)
		}
	}
	return &VM{prog: prog, bindings: bindings, iters: make([]iterState, prog.Iters)}, nil
}

func validateBinding(b *ArrayBinding) error {
	switch b.Path {
	case PathManaged:
		if b.Managed == nil {
			return errors.New("managed path needs Managed storage")
		}
	case PathJNI:
		if b.EP == nil || b.JNI == nil || b.Handle == 0 {
			return errors.New("jni path needs EP, JNI and Handle")
		}
	case PathUnsafe:
		if b.Unsafe == nil {
			return errors.New("unsafe path needs raw words")
		}
	case PathSmart:
		if b.EP == nil || b.Handle == 0 {
			return errors.New("smartarray path needs EP and Handle")
		}
	default:
		return fmt.Errorf("unknown path %d", b.Path)
	}
	return nil
}

// BindIter attaches iterator slot slot to array slot arraySlot starting at
// index.
func (vm *VM) BindIter(slot, arraySlot int, index uint64) error {
	if slot < 0 || slot >= len(vm.iters) {
		return fmt.Errorf("minivm: iterator slot %d out of range", slot)
	}
	if arraySlot < 0 || arraySlot >= len(vm.bindings) {
		return fmt.Errorf("minivm: array slot %d out of range", arraySlot)
	}
	b := vm.bindings[arraySlot]
	st := iterState{binding: b, pos: index}
	switch b.Path {
	case PathSmart:
		a, err := b.EP.ResolveArray(b.Handle)
		if err != nil {
			return err
		}
		st.it = core.NewIterator(a, b.Socket, index)
	case PathJNI:
		h, err := b.JNI.IterNew(b.Handle, b.Socket, index)
		if err != nil {
			return err
		}
		st.handle = h
	}
	vm.iters[slot] = st
	return nil
}

// load reads arrays[slot][idx] through the binding's path.
func (vm *VM) load(slot int, idx uint64) (uint64, error) {
	b := vm.bindings[slot]
	switch b.Path {
	case PathManaged:
		return b.Managed[idx], nil
	case PathJNI:
		return b.JNI.Get(b.Handle, b.Socket, idx)
	case PathUnsafe:
		return b.Unsafe[idx], nil
	default: // PathSmart
		a, err := b.EP.ResolveArray(b.Handle)
		if err != nil {
			return 0, err
		}
		return a.GetFrom(b.Socket, idx), nil
	}
}

func (vm *VM) iterGet(slot int) (uint64, error) {
	st := &vm.iters[slot]
	if st.binding == nil {
		return 0, fmt.Errorf("minivm: iterator slot %d unbound", slot)
	}
	switch st.binding.Path {
	case PathSmart:
		return st.it.Get(), nil
	case PathJNI:
		return st.binding.JNI.IterGet(st.handle)
	case PathManaged:
		return st.binding.Managed[st.pos], nil
	default: // PathUnsafe
		return st.binding.Unsafe[st.pos], nil
	}
}

func (vm *VM) iterNext(slot int) error {
	st := &vm.iters[slot]
	if st.binding == nil {
		return fmt.Errorf("minivm: iterator slot %d unbound", slot)
	}
	switch st.binding.Path {
	case PathSmart:
		st.it.Next()
	case PathJNI:
		return st.binding.JNI.IterNext(st.handle)
	default:
		st.pos++
	}
	return nil
}

// Interpret runs the program on the interpreter tier and returns the halt
// register's value.
func (vm *VM) Interpret() (uint64, error) {
	pc := 0
	code := vm.prog.Code
	for pc >= 0 && pc < len(code) {
		in := &code[pc]
		switch in.Op {
		case OpConst:
			vm.regs[in.A] = in.Imm
			pc++
		case OpMove:
			vm.regs[in.A] = vm.regs[in.B]
			pc++
		case OpAdd:
			vm.regs[in.A] = vm.regs[in.B] + vm.regs[in.C]
			pc++
		case OpAddImm:
			vm.regs[in.A] = vm.regs[in.B] + in.Imm
			pc++
		case OpLoad:
			v, err := vm.load(int(in.B), vm.regs[in.C])
			if err != nil {
				return 0, err
			}
			vm.regs[in.A] = v
			pc++
		case OpIterGet:
			v, err := vm.iterGet(int(in.B))
			if err != nil {
				return 0, err
			}
			vm.regs[in.A] = v
			pc++
		case OpIterNext:
			if err := vm.iterNext(int(in.B)); err != nil {
				return 0, err
			}
			pc++
		case OpLt:
			if vm.regs[in.B] < vm.regs[in.C] {
				vm.regs[in.A] = 1
			} else {
				vm.regs[in.A] = 0
			}
			pc++
		case OpJnz:
			if vm.regs[in.A] != 0 {
				pc = int(in.Imm)
			} else {
				pc++
			}
		case OpJmp:
			pc = int(in.Imm)
		case OpHalt:
			return vm.regs[in.A], nil
		default:
			next, ok := vm.interpretExt(in, pc)
			if !ok {
				return 0, fmt.Errorf("minivm: illegal opcode %d at pc %d", in.Op, pc)
			}
			pc = next
		}
	}
	return 0, errors.New("minivm: fell off program end")
}
