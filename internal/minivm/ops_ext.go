package minivm

// Extended opcodes: enough arithmetic and control flow to express the
// column-store style guest programs (filtered aggregation, §5.1's
// database motivation) rather than only straight-line sums.
const (
	// OpMul: regs[A] = regs[B] * regs[C].
	OpMul Op = iota + OpHalt + 1
	// OpSub: regs[A] = regs[B] - regs[C].
	OpSub
	// OpAnd: regs[A] = regs[B] & regs[C].
	OpAnd
	// OpOr: regs[A] = regs[B] | regs[C].
	OpOr
	// OpShr: regs[A] = regs[B] >> Imm.
	OpShr
	// OpJz: if regs[A] == 0, jump to absolute pc Imm.
	OpJz
	// OpGtImm: regs[A] = 1 if regs[B] > Imm else 0.
	OpGtImm
)

// interpretExt executes an extended opcode on the interpreter tier,
// returning the next pc or an error for unknown opcodes.
func (vm *VM) interpretExt(in *Instr, pc int) (int, bool) {
	switch in.Op {
	case OpMul:
		vm.regs[in.A] = vm.regs[in.B] * vm.regs[in.C]
	case OpSub:
		vm.regs[in.A] = vm.regs[in.B] - vm.regs[in.C]
	case OpAnd:
		vm.regs[in.A] = vm.regs[in.B] & vm.regs[in.C]
	case OpOr:
		vm.regs[in.A] = vm.regs[in.B] | vm.regs[in.C]
	case OpShr:
		vm.regs[in.A] = vm.regs[in.B] >> (in.Imm & 63)
	case OpJz:
		if vm.regs[in.A] == 0 {
			return int(in.Imm), true
		}
	case OpGtImm:
		if vm.regs[in.B] > in.Imm {
			vm.regs[in.A] = 1
		} else {
			vm.regs[in.A] = 0
		}
	default:
		return 0, false
	}
	return pc + 1, true
}

// compileExt lowers an extended opcode, returning nil when the opcode is
// not an extended one.
func (vm *VM) compileExt(pc int, in Instr) compiledFn {
	next := pc + 1
	a, b, c := in.A, in.B, in.C
	imm := in.Imm
	switch in.Op {
	case OpMul:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] * vm.regs[c]; return next, nil }
	case OpSub:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] - vm.regs[c]; return next, nil }
	case OpAnd:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] & vm.regs[c]; return next, nil }
	case OpOr:
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] | vm.regs[c]; return next, nil }
	case OpShr:
		shift := imm & 63
		return func(vm *VM) (int, error) { vm.regs[a] = vm.regs[b] >> shift; return next, nil }
	case OpJz:
		target := int(imm)
		return func(vm *VM) (int, error) {
			if vm.regs[a] == 0 {
				return target, nil
			}
			return next, nil
		}
	case OpGtImm:
		return func(vm *VM) (int, error) {
			if vm.regs[b] > imm {
				vm.regs[a] = 1
			} else {
				vm.regs[a] = 0
			}
			return next, nil
		}
	default:
		return nil
	}
}

// FilteredSumProgram builds the column-store guest query
// `SELECT SUM(values[i] * weights[i]) WHERE values[i] > threshold` over
// iterator slots 0 (values) and 1 (weights) of array slots 0 and 1.
func FilteredSumProgram(n uint64, threshold uint64) Program {
	const (
		rSum  = 0
		rI    = 1
		rN    = 2
		rVal  = 3
		rW    = 4
		rCond = 5
		rProd = 6
	)
	return Program{
		Arrays: 2,
		Iters:  2,
		Code: []Instr{
			{Op: OpConst, A: rSum, Imm: 0},
			{Op: OpConst, A: rI, Imm: 0},
			{Op: OpConst, A: rN, Imm: n},
			// loop: (pc 3)
			{Op: OpIterGet, A: rVal, B: 0},
			{Op: OpIterGet, A: rW, B: 1},
			{Op: OpGtImm, A: rCond, B: rVal, Imm: threshold},
			{Op: OpJz, A: rCond, Imm: 9}, // skip accumulation
			{Op: OpMul, A: rProd, B: rVal, C: rW},
			{Op: OpAdd, A: rSum, B: rSum, C: rProd},
			// skip: (pc 9)
			{Op: OpIterNext, B: 0},
			{Op: OpIterNext, B: 1},
			{Op: OpAddImm, A: rI, B: rI, Imm: 1},
			{Op: OpLt, A: rCond, B: rI, C: rN},
			{Op: OpJnz, A: rCond, Imm: 3},
			{Op: OpHalt, A: rSum},
		},
	}
}
