package minivm

import (
	"strings"
	"testing"
)

func TestDisasmCoversEveryOpcode(t *testing.T) {
	ops := []Op{
		OpConst, OpMove, OpAdd, OpAddImm, OpLoad, OpIterGet, OpIterNext,
		OpLt, OpJnz, OpJmp, OpHalt, OpMul, OpSub, OpAnd, OpOr, OpShr,
		OpJz, OpGtImm,
	}
	for _, op := range ops {
		s := Disasm(Instr{Op: op, A: 1, B: 2, C: 3, Imm: 4})
		if s == "" || strings.HasPrefix(s, "op") {
			t.Errorf("opcode %d not disassembled: %q", int(op), s)
		}
	}
	// Unknown opcodes render a placeholder rather than panicking.
	if s := Disasm(Instr{Op: Op(200)}); !strings.HasPrefix(s, "op200") {
		t.Errorf("unknown opcode = %q", s)
	}
}

func TestProgramString(t *testing.T) {
	out := SumIterProgram(10).String()
	for _, want := range []string{"; arrays=1 iters=1", "iget", "inext", "jnz", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("program dump missing %q in:\n%s", want, out)
		}
	}
	// Every pc appears as a label.
	if !strings.Contains(out, "  0: const") {
		t.Errorf("missing pc labels:\n%s", out)
	}
}

func TestDisasmFilteredSum(t *testing.T) {
	out := FilteredSumProgram(100, 7).String()
	for _, want := range []string{"gti", "jz", "mul"} {
		if !strings.Contains(out, want) {
			t.Errorf("filtered-sum dump missing %q", want)
		}
	}
}
