package encoding

import (
	"math/bits"

	"smartarrays/internal/bitpack"
)

// zigzag maps a wrapping uint64 difference onto small magnitudes:
// 0,-1,+1,-2,... -> 0,1,2,3,... so ascending-by-small-steps data packs at
// a few bits per delta. Wrapping arithmetic makes the transform lossless
// for every pair of uint64 values.
func zigzag(diff uint64) uint64 {
	d := int64(diff)
	return uint64((d << 1) ^ (d >> 63))
}

// unzigzag inverts zigzag back to a wrapping difference.
func unzigzag(z uint64) uint64 {
	return uint64(int64(z>>1) ^ -int64(z&1))
}

// DeltaArray stores each 64-element chunk as a bit-packed first value
// ("base") plus bit-packed zigzag deltas between neighbours (delta 0 at
// each chunk start, so chunks decode independently). Sorted or
// slowly-varying data packs at the delta width instead of the value
// width, and chunks whose deltas are all zero — constant spans — are
// detected from the packed words and folded in O(1) per chunk.
type DeltaArray struct {
	bases  *BitPackedArray // first value of each chunk
	deltas *BitPackedArray // zigzag deltas, full length
	length uint64
	// constChunks counts chunks whose deltas are all zero, a cost-model
	// signal for how much of the array folds without decoding.
	constChunks uint64
}

// NewDelta builds a delta encoding of values.
func NewDelta(values []uint64) *DeltaArray {
	n := uint64(len(values))
	chunks := (n + bitpack.ChunkSize - 1) / bitpack.ChunkSize
	bases := make([]uint64, chunks)
	deltas := make([]uint64, n)
	for i, v := range values {
		if i%bitpack.ChunkSize == 0 {
			bases[i/bitpack.ChunkSize] = v
			deltas[i] = 0
		} else {
			deltas[i] = zigzag(v - values[i-1])
		}
	}
	a := &DeltaArray{
		bases:  NewBitPacked(bases),
		deltas: NewBitPacked(deltas),
		length: n,
	}
	for c := uint64(0); c < chunks; c++ {
		if a.constChunk(c) {
			a.constChunks++
		}
	}
	return a
}

// constChunk reports whether chunk's deltas are all zero (the chunk is a
// single constant span) by testing the packed words directly — no decode.
func (a *DeltaArray) constChunk(chunk uint64) bool {
	wpc := a.deltas.codec.WordsPerChunk()
	for _, w := range a.deltas.data[chunk*wpc : (chunk+1)*wpc] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ConstChunkShare is the fraction of chunks that are constant spans.
func (a *DeltaArray) ConstChunkShare() float64 {
	chunks := (a.length + bitpack.ChunkSize - 1) / bitpack.ChunkSize
	if chunks == 0 {
		return 0
	}
	return float64(a.constChunks) / float64(chunks)
}

// Kind identifies the technique.
func (a *DeltaArray) Kind() Kind { return Delta }

// Length is the element count.
func (a *DeltaArray) Length() uint64 { return a.length }

// PayloadBytes is chunk bases plus deltas.
func (a *DeltaArray) PayloadBytes() uint64 {
	return a.bases.PayloadBytes() + a.deltas.PayloadBytes()
}

// Get returns the element at index: the chunk base plus the prefix sum of
// the chunk's deltas up to index — random access pays a partial chunk
// decode, which is what the cost model charges it for.
func (a *DeltaArray) Get(index uint64) uint64 {
	if index >= a.length {
		panic("encoding: delta index out of range")
	}
	chunk := index / bitpack.ChunkSize
	v := a.bases.Get(chunk)
	if a.constChunk(chunk) {
		return v
	}
	base := chunk * bitpack.ChunkSize
	for i := base + 1; i <= index; i++ {
		v += unzigzag(a.deltas.Get(i))
	}
	return v
}

// DecodeChunk materializes chunk's 64 elements into out.
func (a *DeltaArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	v := a.bases.Get(chunk)
	if a.constChunk(chunk) {
		for i := range out {
			out[i] = v
		}
		return
	}
	a.deltas.codec.Unpack(a.deltas.data, chunk, out)
	for i := range out {
		v += unzigzag(out[i])
		out[i] = v
	}
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum; constant chunks
// contribute base*64 without decoding.
func (a *DeltaArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	var buf [bitpack.ChunkSize]uint64
	var s uint64
	for c := chunkLo; c < chunkHi; c++ {
		if a.constChunk(c) {
			s += a.bases.Get(c) * bitpack.ChunkSize
			continue
		}
		a.DecodeChunk(c, &buf)
		for _, v := range buf {
			s += v
		}
	}
	return s
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
func (a *DeltaArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	m := ^uint64(0)
	a.foldChunks(chunkLo, chunkHi, func(v uint64, n uint64) {
		if v < m {
			m = v
		}
	})
	return m
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (a *DeltaArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	var m uint64
	a.foldChunks(chunkLo, chunkHi, func(v uint64, n uint64) {
		if v > m {
			m = v
		}
	})
	return m
}

// CountWhere counts elements matching the predicate; constant chunks are
// one evaluation for 64 elements.
func (a *DeltaArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	var count uint64
	a.foldChunks(chunkLo, chunkHi, func(v uint64, n uint64) {
		if op.Eval(v, threshold) {
			count += n
		}
	})
	return count
}

// foldChunks invokes fn(value, multiplicity) — constant chunks once with
// multiplicity 64, decoded chunks per element with multiplicity 1.
func (a *DeltaArray) foldChunks(chunkLo, chunkHi uint64, fn func(v uint64, n uint64)) {
	var buf [bitpack.ChunkSize]uint64
	for c := chunkLo; c < chunkHi; c++ {
		if a.constChunk(c) {
			fn(a.bases.Get(c), bitpack.ChunkSize)
			continue
		}
		a.DecodeChunk(c, &buf)
		for _, v := range buf {
			fn(v, 1)
		}
	}
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap;
// constant chunks produce a constant mask in O(1).
func (a *DeltaArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	if a.constChunk(chunk) {
		if op.Eval(a.bases.Get(chunk), threshold) {
			return ^uint64(0)
		}
		return 0
	}
	var buf [bitpack.ChunkSize]uint64
	a.DecodeChunk(chunk, &buf)
	var m uint64
	for i, v := range buf {
		if op.Eval(v, threshold) {
			m |= uint64(1) << uint(i)
		}
	}
	return m
}

// SumChunksMasked sums the selected elements; constant chunks are a
// popcount times the base.
func (a *DeltaArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var buf [bitpack.ChunkSize]uint64
	var s uint64
	for c := chunkLo; c < chunkHi; c++ {
		m := masks[c-chunkLo]
		if m == 0 {
			continue
		}
		if a.constChunk(c) {
			s += a.bases.Get(c) * uint64(bits.OnesCount64(m))
			continue
		}
		a.DecodeChunk(c, &buf)
		for m != 0 {
			i := uint64(bits.TrailingZeros64(m))
			s += buf[i]
			m &= m - 1
		}
	}
	return s
}

// MinChunksMasked folds the selected elements into a minimum.
func (a *DeltaArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	m := ^uint64(0)
	a.foldChunksMasked(chunkLo, chunkHi, masks, func(v uint64) {
		if v < m {
			m = v
		}
	})
	return m
}

// MaxChunksMasked folds the selected elements into a maximum.
func (a *DeltaArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var m uint64
	a.foldChunksMasked(chunkLo, chunkHi, masks, func(v uint64) {
		if v > m {
			m = v
		}
	})
	return m
}

func (a *DeltaArray) foldChunksMasked(chunkLo, chunkHi uint64, masks []uint64, fn func(v uint64)) {
	var buf [bitpack.ChunkSize]uint64
	for c := chunkLo; c < chunkHi; c++ {
		m := masks[c-chunkLo]
		if m == 0 {
			continue
		}
		if a.constChunk(c) {
			fn(a.bases.Get(c))
			continue
		}
		a.DecodeChunk(c, &buf)
		for m != 0 {
			i := uint64(bits.TrailingZeros64(m))
			fn(buf[i])
			m &= m - 1
		}
	}
}
