package encoding

import "smartarrays/internal/bitpack"

// Zone maps: per-chunk minimum/maximum statistics over the stored values
// (elements are non-nullable, so every element counts). A predicate
// compared against a chunk's bounds often resolves the whole chunk — all
// 64 elements match, or none do — without touching the packed payload.
// A second, coarse level summarizes ZoneFanout chunks per "super zone" so
// that scans over clustered or sorted data resolve most regions with one
// check per 4096 elements instead of one per 64.
//
// The index is immutable once built; core attaches it to a representation
// snapshot and rebuilds it on re-encode from the already-decoded values.

// ZoneFanout is the number of chunks summarized by one super zone.
const ZoneFanout = 64

// ZoneVerdict is a zone check's outcome for one chunk (or super zone).
type ZoneVerdict int

const (
	// ZoneMixed means the bounds cannot resolve the chunk: evaluate it.
	ZoneMixed ZoneVerdict = iota
	// ZoneNone means no element in the chunk can satisfy the predicate.
	ZoneNone
	// ZoneAll means every element in the chunk satisfies the predicate.
	ZoneAll
)

// ZoneIndex holds per-chunk and per-super-zone value bounds for one
// array. Bounds cover only the valid elements of a ragged tail chunk; a
// ZoneAll verdict there is still safe because mask consumers clamp tail
// bits.
type ZoneIndex struct {
	mins, maxs   []uint64 // per chunk
	smins, smaxs []uint64 // per super zone (ZoneFanout chunks)
	length       uint64
	rootMin      uint64
	rootMax      uint64
}

// zoneBuilder is implemented by codecs with a cheaper-than-decode path
// for computing per-chunk bounds.
type zoneBuilder interface {
	buildZoneIndex() *ZoneIndex
}

func newZoneIndex(length uint64) *ZoneIndex {
	chunks := (length + bitpack.ChunkSize - 1) / bitpack.ChunkSize
	z := &ZoneIndex{
		mins:   make([]uint64, chunks),
		maxs:   make([]uint64, chunks),
		length: length,
	}
	for i := range z.mins {
		z.mins[i] = ^uint64(0)
	}
	return z
}

// seal derives the super-zone level and root bounds from the per-chunk
// bounds. Every builder finishes through here.
func (z *ZoneIndex) seal() *ZoneIndex {
	supers := (uint64(len(z.mins)) + ZoneFanout - 1) / ZoneFanout
	z.smins = make([]uint64, supers)
	z.smaxs = make([]uint64, supers)
	z.rootMin = ^uint64(0)
	z.rootMax = 0
	for s := uint64(0); s < supers; s++ {
		mn, mx := ^uint64(0), uint64(0)
		hi := (s + 1) * ZoneFanout
		if hi > uint64(len(z.mins)) {
			hi = uint64(len(z.mins))
		}
		for c := s * ZoneFanout; c < hi; c++ {
			if z.mins[c] < mn {
				mn = z.mins[c]
			}
			if z.maxs[c] > mx {
				mx = z.maxs[c]
			}
		}
		z.smins[s], z.smaxs[s] = mn, mx
		if mn < z.rootMin {
			z.rootMin = mn
		}
		if mx > z.rootMax {
			z.rootMax = mx
		}
	}
	return z
}

// NewZoneIndexFromValues builds the index with one pass over decoded
// values — the path Reencode uses, since it already holds the plain
// content.
func NewZoneIndexFromValues(values []uint64) *ZoneIndex {
	z := newZoneIndex(uint64(len(values)))
	for c := range z.mins {
		lo, hi := chunkSpan(z.length, uint64(c), uint64(c)+1)
		mn, mx := ^uint64(0), uint64(0)
		for _, v := range values[lo:hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		z.mins[c], z.maxs[c] = mn, mx
	}
	return z.seal()
}

// BuildZoneIndexFunc builds the index from an arbitrary chunk decoder —
// the hook core uses for native (non-re-encoded) representations. decode
// must fill out with chunk c's elements; pad elements beyond the array
// length are ignored here.
func BuildZoneIndexFunc(length uint64, decode func(chunk uint64, out *[bitpack.ChunkSize]uint64)) *ZoneIndex {
	z := newZoneIndex(length)
	var buf [bitpack.ChunkSize]uint64
	for c := range z.mins {
		decode(uint64(c), &buf)
		lo, hi := chunkSpan(length, uint64(c), uint64(c)+1)
		mn, mx := ^uint64(0), uint64(0)
		for _, v := range buf[:hi-lo] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		z.mins[c], z.maxs[c] = mn, mx
	}
	return z.seal()
}

// BuildZoneIndex builds the index for any chunk codec, taking the
// codec-specific shortcut when one exists (RLE walks runs, delta reads
// chunk bases for constant chunks, dict maps id bounds through the
// sorted dictionary).
func BuildZoneIndex(cc ChunkCodec) *ZoneIndex {
	if zb, ok := cc.(zoneBuilder); ok {
		return zb.buildZoneIndex()
	}
	return BuildZoneIndexFunc(cc.Length(), cc.DecodeChunk)
}

// buildZoneIndex (RLE): one pass over the runs, O(runs + chunks) — the
// run index already knows every value and extent, so no decode happens.
func (r *RLEArray) buildZoneIndex() *ZoneIndex {
	z := newZoneIndex(r.length)
	r.forEachSegment(0, r.length, func(v, start, n uint64) {
		for c := start / bitpack.ChunkSize; c <= (start+n-1)/bitpack.ChunkSize; c++ {
			if v < z.mins[c] {
				z.mins[c] = v
			}
			if v > z.maxs[c] {
				z.maxs[c] = v
			}
		}
	})
	return z.seal()
}

// buildZoneIndex (delta): constant chunks get their bounds from the chunk
// base without touching the packed deltas; only varying chunks decode.
func (a *DeltaArray) buildZoneIndex() *ZoneIndex {
	z := newZoneIndex(a.length)
	var buf [bitpack.ChunkSize]uint64
	for c := range z.mins {
		if a.constChunk(uint64(c)) {
			v := a.bases.Get(uint64(c))
			z.mins[c], z.maxs[c] = v, v
			continue
		}
		a.DecodeChunk(uint64(c), &buf)
		lo, hi := chunkSpan(a.length, uint64(c), uint64(c)+1)
		mn, mx := ^uint64(0), uint64(0)
		for _, v := range buf[:hi-lo] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		z.mins[c], z.maxs[c] = mn, mx
	}
	return z.seal()
}

// buildZoneIndex (dict): bound the packed ids, then map through the
// dictionary — it is sorted, so min/max of ids are min/max of values.
func (d *DictArray) buildZoneIndex() *ZoneIndex {
	z := BuildZoneIndexFunc(d.ids.Length(), d.ids.DecodeChunk)
	for c := range z.mins {
		z.mins[c] = d.dict[z.mins[c]]
		z.maxs[c] = d.dict[z.maxs[c]]
	}
	return z.seal()
}

// Length is the indexed array's element count.
func (z *ZoneIndex) Length() uint64 { return z.length }

// Chunks is the number of per-chunk entries.
func (z *ZoneIndex) Chunks() uint64 { return uint64(len(z.mins)) }

// Supers is the number of super-zone entries.
func (z *ZoneIndex) Supers() uint64 { return uint64(len(z.smins)) }

// ChunkBounds returns chunk's value bounds (valid elements only).
func (z *ZoneIndex) ChunkBounds(chunk uint64) (mn, mx uint64) {
	return z.mins[chunk], z.maxs[chunk]
}

// Bounds returns the whole array's value bounds.
func (z *ZoneIndex) Bounds() (mn, mx uint64) { return z.rootMin, z.rootMax }

// Constant reports whether chunk holds a single value, and which.
func (z *ZoneIndex) Constant(chunk uint64) (v uint64, ok bool) {
	if z.mins[chunk] == z.maxs[chunk] {
		return z.mins[chunk], true
	}
	return 0, false
}

// PayloadBytes is the index's storage footprint (both levels).
func (z *ZoneIndex) PayloadBytes() uint64 {
	return uint64(len(z.mins)+len(z.maxs)+len(z.smins)+len(z.smaxs)) * 8
}

// zoneVerdict resolves op/threshold against one [mn, mx] interval.
func zoneVerdict(mn, mx uint64, op bitpack.Cmp, threshold uint64) ZoneVerdict {
	switch op {
	case bitpack.CmpEq:
		if threshold < mn || threshold > mx {
			return ZoneNone
		}
		if mn == mx {
			return ZoneAll
		}
	case bitpack.CmpNe:
		if mn == mx && mn == threshold {
			return ZoneNone
		}
		if threshold < mn || threshold > mx {
			return ZoneAll
		}
	case bitpack.CmpLt:
		if mx < threshold {
			return ZoneAll
		}
		if mn >= threshold {
			return ZoneNone
		}
	case bitpack.CmpLe:
		if mx <= threshold {
			return ZoneAll
		}
		if mn > threshold {
			return ZoneNone
		}
	case bitpack.CmpGt:
		if mn > threshold {
			return ZoneAll
		}
		if mx <= threshold {
			return ZoneNone
		}
	case bitpack.CmpGe:
		if mn >= threshold {
			return ZoneAll
		}
		if mx < threshold {
			return ZoneNone
		}
	}
	return ZoneMixed
}

// Verdict resolves op/threshold against one chunk's bounds.
func (z *ZoneIndex) Verdict(chunk uint64, op bitpack.Cmp, threshold uint64) ZoneVerdict {
	return zoneVerdict(z.mins[chunk], z.maxs[chunk], op, threshold)
}

// SuperVerdict resolves op/threshold against one super zone's bounds; a
// non-Mixed verdict covers all of its chunks at once.
func (z *ZoneIndex) SuperVerdict(super uint64, op bitpack.Cmp, threshold uint64) ZoneVerdict {
	return zoneVerdict(z.smins[super], z.smaxs[super], op, threshold)
}

// PruneStats summarizes how a predicate resolves against the index: the
// share of chunks proven empty (ZoneNone) and full (ZoneAll), and the
// share of super zones resolved without reading their fine entries. The
// bench harness feeds these into the pruning cost model.
type PruneStats struct {
	NoneShare, AllShare float64
	SuperResolvedShare  float64
}

// PruneStatsFor evaluates op/threshold against every entry.
func (z *ZoneIndex) PruneStatsFor(op bitpack.Cmp, threshold uint64) PruneStats {
	var st PruneStats
	if len(z.mins) == 0 {
		return st
	}
	var none, all uint64
	for c := range z.mins {
		switch z.Verdict(uint64(c), op, threshold) {
		case ZoneNone:
			none++
		case ZoneAll:
			all++
		}
	}
	var resolved uint64
	for s := range z.smins {
		if zoneVerdict(z.smins[s], z.smaxs[s], op, threshold) != ZoneMixed {
			resolved++
		}
	}
	st.NoneShare = float64(none) / float64(len(z.mins))
	st.AllShare = float64(all) / float64(len(z.mins))
	st.SuperResolvedShare = float64(resolved) / float64(len(z.smins))
	return st
}
