package encoding

import (
	"smartarrays/internal/bitpack"
)

// FoRArray is frame-of-reference encoding: one reference value (the
// minimum) plus bit-packed residuals at the width of the value *range*.
// Narrow ranges far from zero — timestamps, surrogate keys, sensor
// baselines — pack at MinBits(max-min) instead of MinBits(max). Every
// fold delegates to the fused bitpack kernels over the residuals plus
// reference algebra, and predicates rewrite their thresholds into
// residual space so comparisons never decode.
type FoRArray struct {
	ref    uint64
	resid  *BitPackedArray
	length uint64
}

// NewFoR builds a frame-of-reference encoding of values.
func NewFoR(values []uint64) *FoRArray {
	var ref uint64
	if len(values) > 0 {
		ref = values[0]
		for _, v := range values {
			if v < ref {
				ref = v
			}
		}
	}
	resid := make([]uint64, len(values))
	for i, v := range values {
		resid[i] = v - ref
	}
	return &FoRArray{ref: ref, resid: NewBitPacked(resid), length: uint64(len(values))}
}

// Kind identifies the technique.
func (f *FoRArray) Kind() Kind { return FoR }

// Length is the element count.
func (f *FoRArray) Length() uint64 { return f.length }

// Ref is the reference value (the minimum).
func (f *FoRArray) Ref() uint64 { return f.ref }

// Bits is the residual width.
func (f *FoRArray) Bits() uint { return f.resid.Bits() }

// Get returns the element at index.
func (f *FoRArray) Get(index uint64) uint64 {
	if index >= f.length {
		panic("encoding: for index out of range")
	}
	return f.ref + f.resid.Get(index)
}

// PayloadBytes is the residual payload (the reference rides in the
// header, like the codec width).
func (f *FoRArray) PayloadBytes() uint64 { return f.resid.PayloadBytes() }

// DecodeChunk materializes chunk's 64 elements into out.
func (f *FoRArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	f.resid.DecodeChunk(chunk, out)
	for i := range out {
		out[i] += f.ref
	}
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum: the residual sum
// plus ref times the element count (pad residuals are zero, so clamping
// the count to the array length keeps partial tail chunks exact too).
func (f *FoRArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	lo, hi := chunkSpan(f.length, chunkLo, chunkHi)
	return f.resid.SumChunks(chunkLo, chunkHi) + f.ref*(hi-lo)
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
func (f *FoRArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	if chunkLo >= chunkHi {
		return ^uint64(0)
	}
	return f.ref + f.resid.MinChunks(chunkLo, chunkHi)
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (f *FoRArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	if chunkLo >= chunkHi {
		return 0
	}
	return f.ref + f.resid.MaxChunks(chunkLo, chunkHi)
}

// rewriteThreshold maps a value-space threshold into residual space.
// When threshold < ref every element compares greater, so the outcome is
// constant per operator; otherwise threshold-ref is exact (the fused
// bitpack kernels already handle thresholds beyond the packed width).
func (f *FoRArray) rewriteThreshold(op bitpack.Cmp, threshold uint64) (resid uint64, constKnown, constAll bool) {
	if threshold >= f.ref {
		return threshold - f.ref, false, false
	}
	// Every value >= ref > threshold.
	switch op {
	case bitpack.CmpEq, bitpack.CmpLt, bitpack.CmpLe:
		return 0, true, false
	default: // Ne, Gt, Ge
		return 0, true, true
	}
}

// CountWhere counts elements matching the predicate, in residual space.
func (f *FoRArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	t, constKnown, constAll := f.rewriteThreshold(op, threshold)
	if constKnown {
		if !constAll {
			return 0
		}
		lo, hi := chunkSpan(f.length, chunkLo, chunkHi)
		return hi - lo
	}
	return f.resid.CountWhere(chunkLo, chunkHi, op, t)
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap, in
// residual space.
func (f *FoRArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	t, constKnown, constAll := f.rewriteThreshold(op, threshold)
	if constKnown {
		if !constAll {
			return 0
		}
		return ^uint64(0)
	}
	return f.resid.CmpMaskChunk(chunk, op, t)
}

// SumChunksMasked sums the selected elements: residual masked sum plus
// ref times the selected count.
func (f *FoRArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	return f.resid.SumChunksMasked(chunkLo, chunkHi, masks) +
		f.ref*bitpack.PopcountMasks(masks)
}

// MinChunksMasked folds the selected elements into a minimum (guarding
// the empty selection so the identity is not offset by ref).
func (f *FoRArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	if bitpack.AllZeroMasks(masks) {
		return ^uint64(0)
	}
	return f.ref + f.resid.MinChunksMasked(chunkLo, chunkHi, masks)
}

// MaxChunksMasked folds the selected elements into a maximum.
func (f *FoRArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	if bitpack.AllZeroMasks(masks) {
		return 0
	}
	return f.ref + f.resid.MaxChunksMasked(chunkLo, chunkHi, masks)
}
