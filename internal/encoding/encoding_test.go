package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkRoundTrip(t *testing.T, e Encoded, values []uint64) {
	t.Helper()
	if e.Length() != uint64(len(values)) {
		t.Fatalf("%v: length %d, want %d", e.Kind(), e.Length(), len(values))
	}
	for i, want := range values {
		if got := e.Get(uint64(i)); got != want {
			t.Fatalf("%v: Get(%d) = %d, want %d", e.Kind(), i, got, want)
		}
	}
}

func TestAllEncodingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inputs := map[string][]uint64{
		"random":      nil,
		"runs":        nil,
		"fewDistinct": nil,
		"sorted":      nil,
		"single":      {42},
		"zeros":       make([]uint64, 100),
	}
	random := make([]uint64, 500)
	runs := make([]uint64, 500)
	few := make([]uint64, 500)
	sorted := make([]uint64, 500)
	for i := range random {
		random[i] = rng.Uint64() >> 20
		runs[i] = uint64(i / 50)
		few[i] = uint64(rng.Intn(4)) * 1_000_000_007
		sorted[i] = uint64(i) * 3
	}
	inputs["random"], inputs["runs"], inputs["fewDistinct"], inputs["sorted"] = random, runs, few, sorted

	for name, values := range inputs {
		for _, e := range []Encoded{NewPlain(values), NewBitPacked(values), NewDict(values), NewRLE(values)} {
			t.Run(name+"/"+e.Kind().String(), func(t *testing.T) {
				checkRoundTrip(t, e, values)
				dec := Decode(e)
				for i := range values {
					if dec[i] != values[i] {
						t.Fatalf("Decode mismatch at %d", i)
					}
				}
			})
		}
	}
}

func TestDictCompactsFewDistinct(t *testing.T) {
	values := make([]uint64, 10_000)
	for i := range values {
		values[i] = uint64(i%3) * 0xDEADBEEF00 // 3 distinct, huge magnitudes
	}
	d := NewDict(values)
	if d.DistinctValues() != 3 {
		t.Fatalf("distinct = %d, want 3", d.DistinctValues())
	}
	// 2-bit IDs: ~2.5 KB vs 80 KB plain.
	if d.PayloadBytes() >= NewBitPacked(values).PayloadBytes() {
		t.Errorf("dict (%d B) should beat bitpacked (%d B) on few-distinct data",
			d.PayloadBytes(), NewBitPacked(values).PayloadBytes())
	}
	if id, ok := d.LookupID(0xDEADBEEF00); !ok || id != 1 {
		t.Errorf("LookupID = %d, %v", id, ok)
	}
	if _, ok := d.LookupID(12345); ok {
		t.Error("LookupID of absent value should fail")
	}
}

func TestRLECompactsRuns(t *testing.T) {
	values := make([]uint64, 100_000)
	for i := range values {
		values[i] = uint64(i / 10_000) // 10 long runs
	}
	r := NewRLE(values)
	if r.Runs() != 10 {
		t.Fatalf("runs = %d, want 10", r.Runs())
	}
	if r.PayloadBytes() >= 1000 {
		t.Errorf("RLE payload = %d B, want tiny for 10 runs", r.PayloadBytes())
	}
	// Random access across run boundaries.
	for _, idx := range []uint64{0, 9_999, 10_000, 55_555, 99_999} {
		if got := r.Get(idx); got != idx/10_000 {
			t.Errorf("Get(%d) = %d, want %d", idx, got, idx/10_000)
		}
	}
}

func TestRLEGetPanicsOutOfRange(t *testing.T) {
	r := NewRLE([]uint64{1, 1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Get(3)
}

func TestSelectPicksTheRightTechnique(t *testing.T) {
	long := make([]uint64, 50_000)
	for i := range long {
		long[i] = uint64(i / 5_000)
	}
	e, err := Select(long)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind() != RLE {
		t.Errorf("long runs selected %v, want rle", e.Kind())
	}

	few := make([]uint64, 50_000)
	rng := rand.New(rand.NewSource(1))
	for i := range few {
		few[i] = uint64(rng.Intn(7)) * 0xABCDEF012345 // high entropy order, few values
	}
	e, err = Select(few)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind() != Dict {
		t.Errorf("few-distinct selected %v, want dictionary", e.Kind())
	}

	smallRandom := make([]uint64, 50_000)
	for i := range smallRandom {
		smallRandom[i] = rng.Uint64() % 1000 // ~1000 distinct small values
	}
	e, err = Select(smallRandom)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind() != BitPacked && e.Kind() != Dict {
		t.Errorf("small random selected %v, want bitpacked or dictionary", e.Kind())
	}

	if _, err := Select(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestSelectNeverLosesToPlain(t *testing.T) {
	f := func(values []uint64) bool {
		if len(values) == 0 {
			return true
		}
		e, err := Select(values)
		if err != nil {
			return false
		}
		if e.PayloadBytes() > NewPlain(values).PayloadBytes() {
			return false
		}
		// And round-trips.
		for i, v := range values {
			if e.Get(uint64(i)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: RLE random access equals the reference for arbitrary runs.
func TestQuickRLERandomAccess(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var values []uint64
		for len(values) < 2000 {
			v := uint64(rng.Intn(5))
			n := rng.Intn(200) + 1
			for i := 0; i < n; i++ {
				values = append(values, v)
			}
		}
		r := NewRLE(values)
		for trial := 0; trial < 200; trial++ {
			i := uint64(rng.Intn(len(values)))
			if r.Get(i) != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Plain: "plain", BitPacked: "bitpacked", Dict: "dictionary", RLE: "rle", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
