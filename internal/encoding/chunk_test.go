package encoding

import (
	"math/rand"
	"testing"

	"smartarrays/internal/bitpack"
)

var chunkTestCmps = []bitpack.Cmp{
	bitpack.CmpEq, bitpack.CmpNe, bitpack.CmpLt,
	bitpack.CmpLe, bitpack.CmpGt, bitpack.CmpGe,
}

// chunkTestValues builds a width-w dataset with a bit of everything: runs,
// jumps, boundary values, and noise. Length is deliberately not a chunk
// multiple so the partial-tail paths get exercised.
func chunkTestValues(w uint, rng *rand.Rand) []uint64 {
	max := bitpack.MustNew(w).MaxValue()
	n := 5*bitpack.ChunkSize + rng.Intn(2*bitpack.ChunkSize) + 1
	values := make([]uint64, n)
	i := 0
	for i < n {
		var v uint64
		switch rng.Intn(4) {
		case 0:
			v = 0
		case 1:
			v = max
		case 2:
			v = rng.Uint64() & max
		default:
			v = uint64(i) & max // locally increasing
		}
		runLen := 1
		if rng.Intn(2) == 0 {
			runLen += rng.Intn(40)
		}
		for ; runLen > 0 && i < n; runLen-- {
			values[i] = v
			i++
		}
	}
	return values
}

// checkChunkCodec pins every ChunkCodec entry point against the Get-based
// scalar reference on one dataset.
func checkChunkCodec(t *testing.T, cc ChunkCodec, values []uint64, rng *rand.Rand) {
	t.Helper()
	n := uint64(len(values))
	fullChunks := n / bitpack.ChunkSize
	allChunks := (n + bitpack.ChunkSize - 1) / bitpack.ChunkSize

	// DecodeChunk on every chunk, including the ragged tail (pad ignored).
	var buf [bitpack.ChunkSize]uint64
	for c := uint64(0); c < allChunks; c++ {
		cc.DecodeChunk(c, &buf)
		for i := uint64(0); i < bitpack.ChunkSize && c*bitpack.ChunkSize+i < n; i++ {
			if buf[i] != values[c*bitpack.ChunkSize+i] {
				t.Fatalf("DecodeChunk(%d)[%d] = %d, want %d", c, i, buf[i], values[c*bitpack.ChunkSize+i])
			}
		}
	}

	// Unmasked folds over a few full-chunk windows, empty window included.
	windows := [][2]uint64{{0, fullChunks}, {0, 0}}
	if fullChunks >= 2 {
		lo := uint64(rng.Intn(int(fullChunks)))
		hi := lo + 1 + uint64(rng.Intn(int(fullChunks-lo)))
		windows = append(windows, [2]uint64{lo, hi}, [2]uint64{fullChunks - 1, fullChunks})
	}
	thresholds := []uint64{0, ^uint64(0), values[rng.Intn(len(values))], values[0] + 1}
	for _, win := range windows {
		lo, hi := win[0]*bitpack.ChunkSize, win[1]*bitpack.ChunkSize
		var sum, max uint64
		min := ^uint64(0)
		for _, v := range values[lo:hi] {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if got := cc.SumChunks(win[0], win[1]); got != sum {
			t.Fatalf("SumChunks%v = %d, want %d", win, got, sum)
		}
		if got := cc.MinChunks(win[0], win[1]); got != min {
			t.Fatalf("MinChunks%v = %d, want %d", win, got, min)
		}
		if got := cc.MaxChunks(win[0], win[1]); got != max {
			t.Fatalf("MaxChunks%v = %d, want %d", win, got, max)
		}
		for _, op := range chunkTestCmps {
			for _, thr := range thresholds {
				var count uint64
				for _, v := range values[lo:hi] {
					if op.Eval(v, thr) {
						count++
					}
				}
				if got := cc.CountWhere(win[0], win[1], op, thr); got != count {
					t.Fatalf("CountWhere%v(%v, %d) = %d, want %d", win, op, thr, got, count)
				}
			}
		}
	}

	// CmpMaskChunk on every chunk (tail pad bits ignored).
	for c := uint64(0); c < allChunks; c++ {
		for _, op := range chunkTestCmps {
			thr := thresholds[rng.Intn(len(thresholds))]
			got := cc.CmpMaskChunk(c, op, thr)
			for i := uint64(0); i < bitpack.ChunkSize && c*bitpack.ChunkSize+i < n; i++ {
				want := op.Eval(values[c*bitpack.ChunkSize+i], thr)
				if got>>i&1 == 1 != want {
					t.Fatalf("CmpMaskChunk(%d, %v, %d) bit %d = %v, want %v", c, op, thr, i, !want, want)
				}
			}
		}
	}

	// Masked folds over the whole array with random selections, clamped at
	// the tail the way core.MaskRange guarantees. Include all-zero and
	// all-ones masks to hit the identity paths.
	for trial := 0; trial < 3; trial++ {
		masks := make([]uint64, allChunks)
		for i := range masks {
			switch trial {
			case 0:
				masks[i] = 0
			case 1:
				masks[i] = ^uint64(0)
			default:
				masks[i] = rng.Uint64()
			}
		}
		if tail := n % bitpack.ChunkSize; tail != 0 {
			masks[allChunks-1] &= uint64(1)<<tail - 1
		}
		var sum, max uint64
		min := ^uint64(0)
		for i, v := range values {
			if masks[i/bitpack.ChunkSize]>>(uint(i)%bitpack.ChunkSize)&1 == 0 {
				continue
			}
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if got := cc.SumChunksMasked(0, allChunks, masks); got != sum {
			t.Fatalf("SumChunksMasked trial %d = %d, want %d", trial, got, sum)
		}
		if got := cc.MinChunksMasked(0, allChunks, masks); got != min {
			t.Fatalf("MinChunksMasked trial %d = %d, want %d", trial, got, min)
		}
		if got := cc.MaxChunksMasked(0, allChunks, masks); got != max {
			t.Fatalf("MaxChunksMasked trial %d = %d, want %d", trial, got, max)
		}
	}
}

// TestChunkCodecWidthSweep pins every codec's chunk and fold kernels
// against the Get-based reference at every packed width 1..64.
func TestChunkCodecWidthSweep(t *testing.T) {
	for w := uint(1); w <= 64; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		values := chunkTestValues(w, rng)
		for _, kind := range Kinds {
			e, err := Build(kind, values)
			if err != nil {
				t.Fatalf("width %d: Build(%v): %v", w, kind, err)
			}
			cc, ok := e.(ChunkCodec)
			if !ok {
				t.Fatalf("width %d: %v does not implement ChunkCodec", w, kind)
			}
			checkRoundTrip(t, e, values)
			checkChunkCodec(t, cc, values, rng)
		}
	}
}

// TestChunkCodecExactChunkMultiple covers the no-ragged-tail shape the
// sweep's random lengths never produce.
func TestChunkCodecExactChunkMultiple(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	values := make([]uint64, 4*bitpack.ChunkSize)
	for i := range values {
		values[i] = uint64(rng.Intn(1 << 12))
	}
	for _, kind := range Kinds {
		e, err := Build(kind, values)
		if err != nil {
			t.Fatal(err)
		}
		checkChunkCodec(t, e.(ChunkCodec), values, rng)
	}
}

// TestEstimateMatchesConstruction is the property EstimatePayloadBytes
// documents: the estimate from one Analyze pass equals the built
// encoding's PayloadBytes, and EstimateCostStats matches CostStatsOf on
// the structural fields.
func TestEstimateMatchesConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	datasets := map[string][]uint64{
		"empty": nil,
		"one":   {12345},
	}
	for _, w := range []uint{1, 7, 16, 33, 64} {
		datasets["random"+string(rune('0'+w%10))] = chunkTestValues(w, rng)
	}
	sorted := make([]uint64, 3000)
	for i := range sorted {
		sorted[i] = uint64(i) * 5
	}
	datasets["sorted"] = sorted

	for name, values := range datasets {
		stats := Analyze(values)
		for _, kind := range Kinds {
			est := EstimatePayloadBytes(kind, stats)
			e, err := Build(kind, values)
			if err != nil {
				if len(values) == 0 {
					continue
				}
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			if got := e.PayloadBytes(); got != est {
				t.Errorf("%s/%v: estimated %d B, built %d B", name, kind, est, got)
			}
			if len(values) == 0 {
				continue // CostStats of an empty array is a degenerate sentinel
			}
			ecs, bcs := EstimateCostStats(kind, stats), CostStatsOf(e)
			if ecs.CodeBits != bcs.CodeBits {
				t.Errorf("%s/%v: estimated CodeBits %d, built %d", name, kind, ecs.CodeBits, bcs.CodeBits)
			}
			if ecs.RunsPerElem != bcs.RunsPerElem {
				t.Errorf("%s/%v: estimated RunsPerElem %g, built %g", name, kind, ecs.RunsPerElem, bcs.RunsPerElem)
			}
			// Delta's estimate is a lower bound on broken chunks, so the
			// estimated constant share can only be >= the built one.
			if kind == Delta && ecs.ConstChunkShare < bcs.ConstChunkShare {
				t.Errorf("%s/%v: estimated ConstChunkShare %g below built %g",
					name, kind, ecs.ConstChunkShare, bcs.ConstChunkShare)
			}
		}
	}
}

// FuzzEncodingRoundTrip decodes fuzzer-shaped byte strings into value
// slices, builds every codec, and checks Get, DecodeAll via Decode, and
// the unmasked folds against the plain reference.
func FuzzEncodingRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 250}, uint8(8))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 1}, uint8(64))
	f.Fuzz(func(t *testing.T, raw []byte, widthSeed uint8) {
		w := uint(widthSeed)%64 + 1
		mask := bitpack.MustNew(w).MaxValue()
		// Each byte extends the previous value or starts a run, so small
		// inputs still produce runs, jumps, and repeats.
		values := make([]uint64, 0, len(raw))
		var cur uint64
		for _, b := range raw {
			if b&1 == 0 {
				cur = (cur*31 + uint64(b)) & mask
			}
			values = append(values, cur)
		}
		if len(values) == 0 {
			return
		}
		var refSum, refMax uint64
		refMin := ^uint64(0)
		for _, v := range values {
			refSum += v
			if v < refMin {
				refMin = v
			}
			if v > refMax {
				refMax = v
			}
		}
		chunks := (uint64(len(values)) + bitpack.ChunkSize - 1) / bitpack.ChunkSize
		full := uint64(len(values)) / bitpack.ChunkSize
		for _, kind := range Kinds {
			e, err := Build(kind, values)
			if err != nil {
				t.Fatalf("Build(%v): %v", kind, err)
			}
			for i, v := range values {
				if got := e.Get(uint64(i)); got != v {
					t.Fatalf("%v: Get(%d) = %d, want %d", kind, i, got, v)
				}
			}
			cc := e.(ChunkCodec)
			// Whole-array fold via the masked path (clamped tail mask).
			masks := make([]uint64, chunks)
			for i := range masks {
				masks[i] = ^uint64(0)
			}
			if tail := uint64(len(values)) % bitpack.ChunkSize; tail != 0 {
				masks[chunks-1] = uint64(1)<<tail - 1
			}
			if got := cc.SumChunksMasked(0, chunks, masks); got != refSum {
				t.Fatalf("%v: masked sum = %d, want %d", kind, got, refSum)
			}
			if got := cc.MinChunksMasked(0, chunks, masks); got != refMin {
				t.Fatalf("%v: masked min = %d, want %d", kind, got, refMin)
			}
			if got := cc.MaxChunksMasked(0, chunks, masks); got != refMax {
				t.Fatalf("%v: masked max = %d, want %d", kind, got, refMax)
			}
			// Full-chunk prefix via the unmasked folds.
			var headSum uint64
			for _, v := range values[:full*bitpack.ChunkSize] {
				headSum += v
			}
			if got := cc.SumChunks(0, full); got != headSum {
				t.Fatalf("%v: SumChunks(0, %d) = %d, want %d", kind, full, got, headSum)
			}
		}
	})
}
