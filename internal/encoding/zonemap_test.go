package encoding

import (
	"testing"

	"smartarrays/internal/bitpack"
)

var zoneCmps = []bitpack.Cmp{
	bitpack.CmpEq, bitpack.CmpNe, bitpack.CmpLt,
	bitpack.CmpLe, bitpack.CmpGt, bitpack.CmpGe,
}

// zoneTestValues mixes constant runs, a sorted ramp, and noise, with a
// ragged tail — every builder shortcut and the generic path get exercised.
func zoneTestValues(n int) []uint64 {
	values := make([]uint64, n)
	for i := range values {
		switch {
		case i < n/3:
			values[i] = 7 // constant run
		case i < 2*n/3:
			values[i] = uint64(i) // sorted ramp
		default:
			x := uint64(i)*2654435761 + 12345
			values[i] = (x ^ x>>13) & 1023
		}
	}
	return values
}

// TestZoneIndexBuildersAgree builds the index through every codec and
// checks the per-chunk bounds against a brute-force scan of the values.
func TestZoneIndexBuildersAgree(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 4096, 4097} {
		values := zoneTestValues(n)
		want := NewZoneIndexFromValues(values)
		for _, kind := range Kinds {
			enc, err := Build(kind, values)
			if err != nil {
				t.Fatalf("Build(%v, n=%d): %v", kind, n, err)
			}
			z := BuildZoneIndex(enc.(ChunkCodec))
			if z.Length() != want.Length() || z.Chunks() != want.Chunks() {
				t.Fatalf("%v n=%d: shape = (%d,%d), want (%d,%d)",
					kind, n, z.Length(), z.Chunks(), want.Length(), want.Chunks())
			}
			for c := uint64(0); c < z.Chunks(); c++ {
				gmn, gmx := z.ChunkBounds(c)
				wmn, wmx := want.ChunkBounds(c)
				if gmn != wmn || gmx != wmx {
					t.Fatalf("%v n=%d chunk %d: bounds [%d,%d], want [%d,%d]",
						kind, n, c, gmn, gmx, wmn, wmx)
				}
			}
			gmn, gmx := z.Bounds()
			wmn, wmx := want.Bounds()
			if gmn != wmn || gmx != wmx {
				t.Fatalf("%v n=%d: root bounds [%d,%d], want [%d,%d]", kind, n, gmn, gmx, wmn, wmx)
			}
		}
	}
}

// TestZoneVerdictSound checks, for every chunk, operator, and a spread of
// thresholds, that ZoneNone chunks really contain no match and ZoneAll
// chunks really contain only matches.
func TestZoneVerdictSound(t *testing.T) {
	values := zoneTestValues(1000)
	z := NewZoneIndexFromValues(values)
	thresholds := []uint64{0, 1, 6, 7, 8, 100, 333, 666, 999, 1023, ^uint64(0)}
	for _, op := range zoneCmps {
		for _, thr := range thresholds {
			for c := uint64(0); c < z.Chunks(); c++ {
				lo := c * bitpack.ChunkSize
				hi := lo + bitpack.ChunkSize
				if hi > uint64(len(values)) {
					hi = uint64(len(values))
				}
				matches, elems := 0, int(hi-lo)
				for _, v := range values[lo:hi] {
					if op.Eval(v, thr) {
						matches++
					}
				}
				switch z.Verdict(c, op, thr) {
				case ZoneNone:
					if matches != 0 {
						t.Fatalf("op %v thr %d chunk %d: ZoneNone but %d matches", op, thr, c, matches)
					}
				case ZoneAll:
					if matches != elems {
						t.Fatalf("op %v thr %d chunk %d: ZoneAll but %d/%d matches", op, thr, c, matches, elems)
					}
				}
			}
			// Super-zone verdicts must agree with their chunks.
			for s := uint64(0); s < z.Supers(); s++ {
				sv := z.SuperVerdict(s, op, thr)
				if sv == ZoneMixed {
					continue
				}
				last := (s + 1) * ZoneFanout
				if last > z.Chunks() {
					last = z.Chunks()
				}
				for c := s * ZoneFanout; c < last; c++ {
					if cv := z.Verdict(c, op, thr); cv != sv {
						t.Fatalf("op %v thr %d: super %d says %d but chunk %d says %d", op, thr, s, sv, c, cv)
					}
				}
			}
		}
	}
}

// TestZoneConstantAndStats pins the Constant fast path and the PruneStats
// accounting on a fully sorted ramp.
func TestZoneConstantAndStats(t *testing.T) {
	n := 64 * 256
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(i / 1024) // long constant plateaus
	}
	z := NewZoneIndexFromValues(values)
	for c := uint64(0); c < z.Chunks(); c++ {
		v, ok := z.Constant(c)
		if !ok {
			t.Fatalf("chunk %d: expected constant", c)
		}
		if want := values[c*bitpack.ChunkSize]; v != want {
			t.Fatalf("chunk %d: constant %d, want %d", c, v, want)
		}
	}
	// values < 4 selects exactly the first quarter of the ramp.
	st := z.PruneStatsFor(bitpack.CmpLt, 4)
	if st.AllShare != 0.25 || st.NoneShare != 0.75 {
		t.Fatalf("PruneStats = %+v, want all=0.25 none=0.75", st)
	}
	if st.SuperResolvedShare != 1 {
		t.Fatalf("SuperResolvedShare = %v, want 1 (sorted data, aligned boundary)", st.SuperResolvedShare)
	}
}
