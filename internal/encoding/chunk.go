package encoding

import (
	"math/bits"
	"sort"

	"smartarrays/internal/bitpack"
)

// ChunkCodec is the chunk-granular kernel interface every encoding
// implements, mirroring the fused bitpack kernels so core.SmartArray and
// the colstore scan pipeline can dispatch over the representation instead
// of assuming bit packing.
//
// Contract (same as core's range decomposition guarantees for bitpack):
//
//   - The unmasked whole-chunk folds (SumChunks, MinChunks, MaxChunks,
//     CountWhere) are called only on ranges of full chunks — every element
//     of [chunkLo*64, chunkHi*64) is a real element. Ragged heads and
//     tails go through Get or the masked paths.
//   - Masked folds receive selection bitmaps whose bits beyond the valid
//     element range are clear (core.MaskRange clamps them), so a partial
//     tail chunk is safe to include.
//   - DecodeChunk and CmpMaskChunk may be called on a partial tail chunk;
//     decoded pad values and pad mask bits are unspecified — callers must
//     ignore positions at or beyond Length().
//   - Fold identities match bitpack: sum/count/max of an empty selection
//     is 0, min is ^uint64(0).
type ChunkCodec interface {
	Encoded
	// DecodeChunk materializes chunk's 64 elements into out.
	DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64)
	// SumChunks folds chunks [chunkLo, chunkHi) into a sum.
	SumChunks(chunkLo, chunkHi uint64) uint64
	// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
	MinChunks(chunkLo, chunkHi uint64) uint64
	// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
	MaxChunks(chunkLo, chunkHi uint64) uint64
	// CountWhere counts elements in [chunkLo, chunkHi) matching op threshold.
	CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64
	// CmpMaskChunk evaluates the predicate over one chunk into a bitmap
	// (bit i = element chunk*64+i matches).
	CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64
	// SumChunksMasked sums the selected elements of [chunkLo, chunkHi).
	SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64
	// MinChunksMasked folds the selected elements into a minimum.
	MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64
	// MaxChunksMasked folds the selected elements into a maximum.
	MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64
}

// Compile-time checks: every encoding implements the chunk-codec surface.
var (
	_ ChunkCodec = (*PlainArray)(nil)
	_ ChunkCodec = (*BitPackedArray)(nil)
	_ ChunkCodec = (*DictArray)(nil)
	_ ChunkCodec = (*RLEArray)(nil)
	_ ChunkCodec = (*DeltaArray)(nil)
	_ ChunkCodec = (*FoRArray)(nil)
)

// lowMask is a bitmap selecting the low n bits (n <= 64).
func lowMask(n uint64) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// chunkSpan clamps the element window of chunks [chunkLo, chunkHi) to the
// array length, returning [lo, hi).
func chunkSpan(length, chunkLo, chunkHi uint64) (lo, hi uint64) {
	lo = chunkLo * bitpack.ChunkSize
	hi = chunkHi * bitpack.ChunkSize
	if hi > length {
		hi = length
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ---------------------------------------------------------------------------
// Plain: direct slice kernels.

// DecodeChunk materializes chunk's 64 elements into out.
func (p *PlainArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	copy(out[:], p.values[chunk*bitpack.ChunkSize:])
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum.
func (p *PlainArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	lo, hi := chunkSpan(p.Length(), chunkLo, chunkHi)
	var s uint64
	for _, v := range p.values[lo:hi] {
		s += v
	}
	return s
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
func (p *PlainArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	lo, hi := chunkSpan(p.Length(), chunkLo, chunkHi)
	m := ^uint64(0)
	for _, v := range p.values[lo:hi] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (p *PlainArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	lo, hi := chunkSpan(p.Length(), chunkLo, chunkHi)
	var m uint64
	for _, v := range p.values[lo:hi] {
		if v > m {
			m = v
		}
	}
	return m
}

// CountWhere counts elements in [chunkLo, chunkHi) matching the predicate.
func (p *PlainArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	lo, hi := chunkSpan(p.Length(), chunkLo, chunkHi)
	var n uint64
	for _, v := range p.values[lo:hi] {
		if op.Eval(v, threshold) {
			n++
		}
	}
	return n
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap.
func (p *PlainArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	lo, hi := chunkSpan(p.Length(), chunk, chunk+1)
	var m uint64
	for i, v := range p.values[lo:hi] {
		if op.Eval(v, threshold) {
			m |= uint64(1) << uint(i)
		}
	}
	return m
}

// SumChunksMasked sums the selected elements of [chunkLo, chunkHi).
func (p *PlainArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var s uint64
	p.foldMasked(chunkLo, chunkHi, masks, func(v uint64) { s += v })
	return s
}

// MinChunksMasked folds the selected elements into a minimum.
func (p *PlainArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	m := ^uint64(0)
	p.foldMasked(chunkLo, chunkHi, masks, func(v uint64) {
		if v < m {
			m = v
		}
	})
	return m
}

// MaxChunksMasked folds the selected elements into a maximum.
func (p *PlainArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var m uint64
	p.foldMasked(chunkLo, chunkHi, masks, func(v uint64) {
		if v > m {
			m = v
		}
	})
	return m
}

func (p *PlainArray) foldMasked(chunkLo, chunkHi uint64, masks []uint64, fn func(v uint64)) {
	for c := chunkLo; c < chunkHi; c++ {
		m := masks[c-chunkLo]
		if m == 0 {
			continue
		}
		base := c * bitpack.ChunkSize
		for m != 0 {
			i := uint64(bits.TrailingZeros64(m))
			fn(p.values[base+i])
			m &= m - 1
		}
	}
}

// ---------------------------------------------------------------------------
// BitPacked: straight delegation to the fused bitpack kernels.

// DecodeChunk materializes chunk's 64 elements into out.
func (b *BitPackedArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	b.codec.Unpack(b.data, chunk, out)
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum.
func (b *BitPackedArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	return b.codec.SumChunks(b.data, chunkLo, chunkHi)
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
func (b *BitPackedArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	return b.codec.MinChunks(b.data, chunkLo, chunkHi)
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (b *BitPackedArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	return b.codec.MaxChunks(b.data, chunkLo, chunkHi)
}

// CountWhere counts elements in [chunkLo, chunkHi) matching the predicate.
func (b *BitPackedArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	return b.codec.CountWhere(b.data, chunkLo, chunkHi, op, threshold)
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap.
func (b *BitPackedArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	return b.codec.CmpMaskChunk(b.data, chunk, op, threshold)
}

// SumChunksMasked sums the selected elements of [chunkLo, chunkHi).
func (b *BitPackedArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	return b.codec.SumChunksMasked(b.data, chunkLo, chunkHi, masks)
}

// MinChunksMasked folds the selected elements into a minimum.
func (b *BitPackedArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	return b.codec.MinChunksMasked(b.data, chunkLo, chunkHi, masks)
}

// MaxChunksMasked folds the selected elements into a maximum.
func (b *BitPackedArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	return b.codec.MaxChunksMasked(b.data, chunkLo, chunkHi, masks)
}

// ---------------------------------------------------------------------------
// Dict: predicates rewrite into ID space (the classic dictionary trick —
// the sorted dictionary makes order comparisons order-preserving on IDs),
// min/max fold over IDs, sums decode chunk-at-a-time.

// idPredicate is a value-space predicate rewritten into dictionary-ID
// space. Either the outcome is constant for every element (constKnown),
// or (op, thr) is the equivalent ID-space comparison.
type idPredicate struct {
	constKnown bool
	constAll   bool // with constKnown: true = every element matches
	op         bitpack.Cmp
	thr        uint64
}

// rewritePredicate maps (op, value) into ID space via binary search on
// the sorted dictionary. Comparisons then run on bit-packed IDs without
// decoding any values.
func (d *DictArray) rewritePredicate(op bitpack.Cmp, value uint64) idPredicate {
	nd := uint64(len(d.dict))
	i := uint64(sort.Search(len(d.dict), func(i int) bool { return d.dict[i] >= value }))
	exact := i < nd && d.dict[i] == value
	constOf := func(all bool) idPredicate { return idPredicate{constKnown: true, constAll: all} }
	switch op {
	case bitpack.CmpEq:
		if exact {
			return idPredicate{op: bitpack.CmpEq, thr: i}
		}
		return constOf(false)
	case bitpack.CmpNe:
		if exact {
			return idPredicate{op: bitpack.CmpNe, thr: i}
		}
		return constOf(true)
	case bitpack.CmpLt, bitpack.CmpGe:
		// value <  dict[id] for id >= i; value > dict[id] for id < i.
		j := i
		lt := op == bitpack.CmpLt
		if j == 0 {
			return constOf(!lt)
		}
		if j == nd {
			return constOf(lt)
		}
		if lt {
			return idPredicate{op: bitpack.CmpLt, thr: j}
		}
		return idPredicate{op: bitpack.CmpGe, thr: j}
	case bitpack.CmpLe, bitpack.CmpGt:
		j := i
		if exact {
			j++
		}
		le := op == bitpack.CmpLe
		if j == 0 {
			return constOf(!le)
		}
		if j == nd {
			return constOf(le)
		}
		if le {
			return idPredicate{op: bitpack.CmpLt, thr: j}
		}
		return idPredicate{op: bitpack.CmpGe, thr: j}
	default:
		panic("encoding: unknown comparison")
	}
}

// DecodeChunk materializes chunk's 64 elements into out (pad IDs beyond
// the last element decode as 0, a valid dictionary slot).
func (d *DictArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	d.ids.DecodeChunk(chunk, out)
	for i := range out {
		out[i] = d.dict[out[i]]
	}
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum.
func (d *DictArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	var buf [bitpack.ChunkSize]uint64
	var s uint64
	for c := chunkLo; c < chunkHi; c++ {
		d.ids.DecodeChunk(c, &buf)
		for _, id := range buf {
			s += d.dict[id]
		}
	}
	return s
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum: the sorted
// dictionary makes it one ID-space fold plus a lookup.
func (d *DictArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	if chunkLo >= chunkHi {
		return ^uint64(0)
	}
	return d.dict[d.ids.MinChunks(chunkLo, chunkHi)]
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (d *DictArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	if chunkLo >= chunkHi {
		return 0
	}
	return d.dict[d.ids.MaxChunks(chunkLo, chunkHi)]
}

// CountWhere counts matching elements without decoding: the predicate is
// rewritten into ID space and evaluated on the packed IDs.
func (d *DictArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	p := d.rewritePredicate(op, threshold)
	if p.constKnown {
		if !p.constAll {
			return 0
		}
		lo, hi := chunkSpan(d.length, chunkLo, chunkHi)
		return hi - lo
	}
	return d.ids.CountWhere(chunkLo, chunkHi, p.op, p.thr)
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap, in
// ID space.
func (d *DictArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	p := d.rewritePredicate(op, threshold)
	if p.constKnown {
		if !p.constAll {
			return 0
		}
		return ^uint64(0)
	}
	return d.ids.CmpMaskChunk(chunk, p.op, p.thr)
}

// SumChunksMasked sums the selected elements of [chunkLo, chunkHi).
func (d *DictArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var buf [bitpack.ChunkSize]uint64
	var s uint64
	for c := chunkLo; c < chunkHi; c++ {
		m := masks[c-chunkLo]
		if m == 0 {
			continue
		}
		d.ids.DecodeChunk(c, &buf)
		for m != 0 {
			i := uint64(bits.TrailingZeros64(m))
			s += d.dict[buf[i]]
			m &= m - 1
		}
	}
	return s
}

// MinChunksMasked folds the selected elements into a minimum, in ID space.
func (d *DictArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	if bitpack.AllZeroMasks(masks) {
		return ^uint64(0)
	}
	return d.dict[d.ids.MinChunksMasked(chunkLo, chunkHi, masks)]
}

// MaxChunksMasked folds the selected elements into a maximum, in ID space.
func (d *DictArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	if bitpack.AllZeroMasks(masks) {
		return 0
	}
	return d.dict[d.ids.MaxChunksMasked(chunkLo, chunkHi, masks)]
}

// ---------------------------------------------------------------------------
// RLE: every fold walks runs, not elements — O(runs overlapping the
// range) instead of O(elements), which is where the >10x on sorted and
// clustered columns comes from.

// forEachSegment invokes fn(value, segStart, segLen) for each maximal
// run segment overlapping the element window [eLo, eHi), in order.
// eHi is clamped to the array length.
func (r *RLEArray) forEachSegment(eLo, eHi uint64, fn func(v, start, n uint64)) {
	if eHi > r.length {
		eHi = r.length
	}
	if eLo >= eHi {
		return
	}
	run, start := r.seekRun(eLo)
	for pos := eLo; pos < eHi; run++ {
		n := r.lengths.Get(run)
		end := start + n
		segEnd := end
		if segEnd > eHi {
			segEnd = eHi
		}
		fn(r.values.Get(run), pos, segEnd-pos)
		pos = segEnd
		start = end
	}
}

// DecodeChunk materializes chunk's 64 elements into out.
func (r *RLEArray) DecodeChunk(chunk uint64, out *[bitpack.ChunkSize]uint64) {
	base := chunk * bitpack.ChunkSize
	r.forEachSegment(base, base+bitpack.ChunkSize, func(v, start, n uint64) {
		for i := start - base; i < start-base+n; i++ {
			out[i] = v
		}
	})
}

// SumChunks folds chunks [chunkLo, chunkHi) into a sum: value times
// overlap per run.
func (r *RLEArray) SumChunks(chunkLo, chunkHi uint64) uint64 {
	var s uint64
	r.forEachSegment(chunkLo*bitpack.ChunkSize, chunkHi*bitpack.ChunkSize, func(v, _, n uint64) {
		s += v * n
	})
	return s
}

// MinChunks folds chunks [chunkLo, chunkHi) into a minimum.
func (r *RLEArray) MinChunks(chunkLo, chunkHi uint64) uint64 {
	m := ^uint64(0)
	r.forEachSegment(chunkLo*bitpack.ChunkSize, chunkHi*bitpack.ChunkSize, func(v, _, _ uint64) {
		if v < m {
			m = v
		}
	})
	return m
}

// MaxChunks folds chunks [chunkLo, chunkHi) into a maximum.
func (r *RLEArray) MaxChunks(chunkLo, chunkHi uint64) uint64 {
	var m uint64
	r.forEachSegment(chunkLo*bitpack.ChunkSize, chunkHi*bitpack.ChunkSize, func(v, _, _ uint64) {
		if v > m {
			m = v
		}
	})
	return m
}

// CountWhere counts matching elements: one predicate evaluation per run.
func (r *RLEArray) CountWhere(chunkLo, chunkHi uint64, op bitpack.Cmp, threshold uint64) uint64 {
	var count uint64
	r.forEachSegment(chunkLo*bitpack.ChunkSize, chunkHi*bitpack.ChunkSize, func(v, _, n uint64) {
		if op.Eval(v, threshold) {
			count += n
		}
	})
	return count
}

// CmpMaskChunk evaluates the predicate over one chunk into a bitmap: one
// evaluation per run, bits set in contiguous spans.
func (r *RLEArray) CmpMaskChunk(chunk uint64, op bitpack.Cmp, threshold uint64) uint64 {
	base := chunk * bitpack.ChunkSize
	var m uint64
	r.forEachSegment(base, base+bitpack.ChunkSize, func(v, start, n uint64) {
		if op.Eval(v, threshold) {
			m |= lowMask(n) << (start - base)
		}
	})
	return m
}

// SumChunksMasked sums the selected elements: per run, intersect the run
// span with the selection bitmap and popcount.
func (r *RLEArray) SumChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var s uint64
	r.foldSegmentsMasked(chunkLo, chunkHi, masks, func(v uint64, selected uint64) {
		s += v * selected
	})
	return s
}

// MinChunksMasked folds the selected elements into a minimum.
func (r *RLEArray) MinChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	m := ^uint64(0)
	r.foldSegmentsMasked(chunkLo, chunkHi, masks, func(v uint64, selected uint64) {
		if selected > 0 && v < m {
			m = v
		}
	})
	return m
}

// MaxChunksMasked folds the selected elements into a maximum.
func (r *RLEArray) MaxChunksMasked(chunkLo, chunkHi uint64, masks []uint64) uint64 {
	var m uint64
	r.foldSegmentsMasked(chunkLo, chunkHi, masks, func(v uint64, selected uint64) {
		if selected > 0 && v > m {
			m = v
		}
	})
	return m
}

// foldSegmentsMasked walks runs once across the masked window, reporting
// each run's value and its count of selected elements.
func (r *RLEArray) foldSegmentsMasked(chunkLo, chunkHi uint64, masks []uint64, fn func(v uint64, selected uint64)) {
	r.forEachSegment(chunkLo*bitpack.ChunkSize, chunkHi*bitpack.ChunkSize, func(v, start, n uint64) {
		var selected uint64
		for n > 0 {
			chunk := start / bitpack.ChunkSize
			bit := start % bitpack.ChunkSize
			take := bitpack.ChunkSize - bit
			if take > n {
				take = n
			}
			m := masks[chunk-chunkLo] >> bit & lowMask(take)
			selected += uint64(bits.OnesCount64(m))
			start += take
			n -= take
		}
		fn(v, selected)
	})
}
