package encoding

import (
	"smartarrays/internal/bitpack"
)

// Stats is everything one pass over a value slice needs to price every
// encoding technique exactly: min/max bound the bit-packed and
// frame-of-reference widths, the distinct count prices the dictionary,
// run statistics price RLE, and the chunk-first / zigzag maxima price
// delta. Select uses it to construct only the winning encoding instead
// of materializing every candidate.
type Stats struct {
	// N is the element count.
	N uint64
	// Min and Max bound the values (Min is ^0 when N is 0).
	Min, Max uint64
	// Distinct is the number of distinct values.
	Distinct uint64
	// Runs is the number of maximal equal-value runs; MaxRunLen the
	// longest.
	Runs, MaxRunLen uint64
	// MaxChunkFirst is the maximum over chunk-first values (delta bases);
	// MaxZigzag the maximum zigzag delta within chunks.
	MaxChunkFirst, MaxZigzag uint64
}

// Analyze computes Stats in one pass (plus a distinct-value set bounded
// by the cardinality).
func Analyze(values []uint64) Stats {
	var s Stats
	s.N = uint64(len(values))
	if s.N == 0 {
		s.Min = ^uint64(0)
		return s
	}
	s.Min = ^uint64(0)
	distinct := make(map[uint64]struct{}, 64)
	var runLen uint64
	for i, v := range values {
		if v > s.Max {
			s.Max = v
		}
		if v < s.Min {
			s.Min = v
		}
		distinct[v] = struct{}{}
		if i == 0 || v != values[i-1] {
			s.Runs++
			if runLen > s.MaxRunLen {
				s.MaxRunLen = runLen
			}
			runLen = 1
		} else {
			runLen++
		}
		if i%bitpack.ChunkSize == 0 {
			if v > s.MaxChunkFirst {
				s.MaxChunkFirst = v
			}
		} else if z := zigzag(v - values[i-1]); z > s.MaxZigzag {
			s.MaxZigzag = z
		}
	}
	if runLen > s.MaxRunLen {
		s.MaxRunLen = runLen
	}
	s.Distinct = uint64(len(distinct))
	return s
}

// EstimatePayloadBytes returns exactly what Build(kind, values) would
// report as PayloadBytes() for input with these stats — the formulas
// mirror the constructors, so selection can rank candidates without
// materializing them (verified by property test).
func EstimatePayloadBytes(kind Kind, s Stats) uint64 {
	if s.N == 0 {
		return 0
	}
	switch kind {
	case Plain:
		return s.N * 8
	case BitPacked:
		return bitpack.MustNew(bitpack.MinBits(s.Max)).CompressedBytes(s.N)
	case Dict:
		ids := bitpack.MustNew(bitpack.MinBits(s.Distinct - 1)).CompressedBytes(s.N)
		return ids + s.Distinct*8
	case RLE:
		vals := bitpack.MustNew(bitpack.MinBits(s.Max)).CompressedBytes(s.Runs)
		lens := bitpack.MustNew(bitpack.MinBits(s.MaxRunLen)).CompressedBytes(s.Runs)
		index := (s.Runs + rleIndexStride - 1) / rleIndexStride * 8
		return vals + lens + index
	case Delta:
		chunks := (s.N + bitpack.ChunkSize - 1) / bitpack.ChunkSize
		bases := bitpack.MustNew(bitpack.MinBits(s.MaxChunkFirst)).CompressedBytes(chunks)
		deltas := bitpack.MustNew(bitpack.MinBits(s.MaxZigzag)).CompressedBytes(s.N)
		return bases + deltas
	case FoR:
		return bitpack.MustNew(bitpack.MinBits(s.Max - s.Min)).CompressedBytes(s.N)
	default:
		return ^uint64(0)
	}
}

// EstimateCostStats predicts the cost-model summary Build(kind, values)
// would yield for input with these stats, without materializing the
// encoding — the re-encoder scores candidate representations with it.
// Delta's constant-chunk share uses the run-boundary lower bound (each of
// the Runs-1 value changes breaks at most one chunk), which is exact for
// sorted/clustered data.
func EstimateCostStats(kind Kind, s Stats) CostStats {
	cs := CostStats{Kind: kind, CodeBits: 64}
	if s.N == 0 {
		return cs
	}
	cs.PayloadBitsPerElem = float64(EstimatePayloadBytes(kind, s)*8) / float64(s.N)
	switch kind {
	case BitPacked:
		cs.CodeBits = bitpack.MinBits(s.Max)
	case Dict:
		cs.CodeBits = bitpack.MinBits(s.Distinct - 1)
	case RLE:
		cs.CodeBits = bitpack.MinBits(s.Max)
		cs.RunsPerElem = float64(s.Runs) / float64(s.N)
	case Delta:
		cs.CodeBits = bitpack.MinBits(s.MaxZigzag)
		chunks := (s.N + bitpack.ChunkSize - 1) / bitpack.ChunkSize
		if broken := s.Runs - 1; broken < chunks {
			cs.ConstChunkShare = float64(chunks-broken) / float64(chunks)
		}
	case FoR:
		cs.CodeBits = bitpack.MinBits(s.Max - s.Min)
	}
	return cs
}

// CostStats summarizes an encoded array's shape for the perfmodel's
// per-codec cost entries: the width its decode schedule shifts through,
// its storage density (the bandwidth term), and the structural signals
// (runs per element, constant-chunk share) behind the run-skipping and
// chunk-skipping fast paths.
type CostStats struct {
	Kind Kind
	// CodeBits is the packed width the chunk decode shifts through
	// (ID width for Dict, delta width for Delta, residual width for FoR;
	// 64 for Plain).
	CodeBits uint
	// PayloadBitsPerElem is storage bits per element.
	PayloadBitsPerElem float64
	// RunsPerElem is runs/length for RLE (0 otherwise) — folds cost
	// O(runs), not O(elements).
	RunsPerElem float64
	// ConstChunkShare is Delta's fraction of constant chunks, foldable
	// without decode.
	ConstChunkShare float64
}

// CostStatsOf derives the cost-model summary from a built encoding.
func CostStatsOf(e Encoded) CostStats {
	cs := CostStats{Kind: e.Kind(), CodeBits: 64}
	if n := e.Length(); n > 0 {
		cs.PayloadBitsPerElem = float64(e.PayloadBytes()*8) / float64(n)
	}
	switch a := e.(type) {
	case *BitPackedArray:
		cs.CodeBits = a.Bits()
	case *DictArray:
		cs.CodeBits = a.ids.Bits()
	case *RLEArray:
		cs.CodeBits = a.values.Bits()
		if a.length > 0 {
			cs.RunsPerElem = float64(a.runs) / float64(a.length)
		}
	case *DeltaArray:
		cs.CodeBits = a.deltas.Bits()
		cs.ConstChunkShare = a.ConstChunkShare()
	case *FoRArray:
		cs.CodeBits = a.Bits()
	}
	return cs
}
