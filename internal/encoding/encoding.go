// Package encoding implements the alternative lightweight compression
// techniques the paper plans beyond plain bit compression (§4.2, §7):
// dictionary, run-length, delta, and frame-of-reference encoding, plus a
// selector that picks the smallest encoding for a given value
// distribution — the paper's envisioned "ability to dynamically select
// the correct technique".
//
// All encodings expose the same read interface over 64-bit unsigned
// values and report their payload size, so the adaptivity machinery can
// trade them off. Beyond per-element Get, every encoding implements the
// ChunkCodec interface (chunk.go): chunk-granular decode plus the fused,
// masked, and predicate-mask fold hooks mirroring the bitpack kernels
// (SumChunks, CmpMaskChunk, SumChunksMasked, ...), which is what lets
// core.SmartArray and the colstore scan pipeline dispatch over the codec
// instead of assuming bit packing. The encoded forms build on the bitpack
// codec: dictionary IDs, run values, deltas, and residuals are themselves
// bit-packed at their minimum widths.
package encoding

import (
	"errors"
	"fmt"
	"sort"

	"smartarrays/internal/bitpack"
)

// Kind identifies an encoding technique.
type Kind int

const (
	// Plain is uncompressed 64-bit storage.
	Plain Kind = iota
	// BitPacked is the paper's §4.2 bit compression at minimum width.
	BitPacked
	// Dict is dictionary encoding: distinct values in a sorted
	// dictionary, elements stored as bit-packed dictionary IDs.
	Dict
	// RLE is run-length encoding: (value, length) pairs, both
	// bit-packed, with a sparse index for random access.
	RLE
	// Delta stores each chunk as a bit-packed first value plus zigzag
	// deltas between neighbours — tiny widths for sorted or
	// slowly-varying data, with all-zero-delta chunks detected and
	// folded in O(1).
	Delta
	// FoR is frame-of-reference encoding: a single reference (the
	// minimum) plus bit-packed residuals — bit packing for value ranges
	// that are narrow but far from zero.
	FoR
)

// Kinds lists every encoding technique in selection order.
var Kinds = []Kind{Plain, BitPacked, Dict, RLE, Delta, FoR}

// String names the encoding.
func (k Kind) String() string {
	switch k {
	case Plain:
		return "plain"
	case BitPacked:
		return "bitpacked"
	case Dict:
		return "dictionary"
	case RLE:
		return "rle"
	case Delta:
		return "delta"
	case FoR:
		return "for"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Encoded is the common read interface over an encoded array.
type Encoded interface {
	// Kind identifies the technique.
	Kind() Kind
	// Length is the element count.
	Length() uint64
	// Get returns the element at index.
	Get(index uint64) uint64
	// PayloadBytes is the storage footprint of the encoded form.
	PayloadBytes() uint64
}

// PlainArray stores the values as-is (the baseline).
type PlainArray struct {
	values []uint64
}

// NewPlain copies values into a plain encoding.
func NewPlain(values []uint64) *PlainArray {
	return &PlainArray{values: append([]uint64(nil), values...)}
}

// Kind identifies the technique.
func (p *PlainArray) Kind() Kind { return Plain }

// Length is the element count.
func (p *PlainArray) Length() uint64 { return uint64(len(p.values)) }

// Get returns the element at index.
func (p *PlainArray) Get(index uint64) uint64 { return p.values[index] }

// PayloadBytes is the storage footprint.
func (p *PlainArray) PayloadBytes() uint64 { return uint64(len(p.values)) * 8 }

// BitPackedArray is §4.2 bit compression at the minimum width.
type BitPackedArray struct {
	codec  bitpack.Codec
	data   []uint64
	length uint64
}

// NewBitPacked packs values at the minimum width for their maximum.
func NewBitPacked(values []uint64) *BitPackedArray {
	codec := bitpack.MustNew(bitpack.MinBitsFor(values))
	return &BitPackedArray{
		codec:  codec,
		data:   codec.PackSlice(values),
		length: uint64(len(values)),
	}
}

// Kind identifies the technique.
func (b *BitPackedArray) Kind() Kind { return BitPacked }

// Length is the element count.
func (b *BitPackedArray) Length() uint64 { return b.length }

// Get returns the element at index.
func (b *BitPackedArray) Get(index uint64) uint64 { return b.codec.Get(b.data, index) }

// PayloadBytes is the storage footprint.
func (b *BitPackedArray) PayloadBytes() uint64 { return b.codec.CompressedBytes(b.length) }

// Bits is the packed width.
func (b *BitPackedArray) Bits() uint { return b.codec.Bits() }

// DictArray stores each element as a bit-packed ID into a sorted
// dictionary of the distinct values — the standard column-store encoding
// the paper cites (§4.2's related work). It shines when the number of
// distinct values is small relative to their magnitudes.
type DictArray struct {
	dict   []uint64
	ids    *BitPackedArray
	length uint64
}

// NewDict builds a dictionary encoding of values.
func NewDict(values []uint64) *DictArray {
	distinct := map[uint64]struct{}{}
	for _, v := range values {
		distinct[v] = struct{}{}
	}
	dict := make([]uint64, 0, len(distinct))
	for v := range distinct {
		dict = append(dict, v)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	idOf := make(map[uint64]uint64, len(dict))
	for i, v := range dict {
		idOf[v] = uint64(i)
	}
	ids := make([]uint64, len(values))
	for i, v := range values {
		ids[i] = idOf[v]
	}
	return &DictArray{dict: dict, ids: NewBitPacked(ids), length: uint64(len(values))}
}

// Kind identifies the technique.
func (d *DictArray) Kind() Kind { return Dict }

// Length is the element count.
func (d *DictArray) Length() uint64 { return d.length }

// Get returns the element at index (ID lookup then dictionary fetch).
func (d *DictArray) Get(index uint64) uint64 { return d.dict[d.ids.Get(index)] }

// PayloadBytes is IDs plus the dictionary itself.
func (d *DictArray) PayloadBytes() uint64 {
	return d.ids.PayloadBytes() + uint64(len(d.dict))*8
}

// DistinctValues is the dictionary size.
func (d *DictArray) DistinctValues() int { return len(d.dict) }

// LookupID returns the dictionary ID of value, for predicate rewriting
// (evaluate comparisons on IDs without decoding — the classic dictionary
// trick). ok is false when the value does not occur.
func (d *DictArray) LookupID(value uint64) (id uint64, ok bool) {
	i := sort.Search(len(d.dict), func(i int) bool { return d.dict[i] >= value })
	if i < len(d.dict) && d.dict[i] == value {
		return uint64(i), true
	}
	return 0, false
}

// rleIndexStride is how many runs share one sparse-index entry; random
// access binary-searches the index then walks at most a stride of runs.
const rleIndexStride = 32

// RLEArray stores (value, runLength) pairs with a sparse prefix index for
// random access. It wins on long runs (sorted or low-cardinality
// clustered data).
type RLEArray struct {
	values  *BitPackedArray // run values
	lengths *BitPackedArray // run lengths
	// index[k] is the element offset of run k*rleIndexStride.
	index  []uint64
	runs   uint64
	length uint64
}

// NewRLE builds a run-length encoding of values.
func NewRLE(values []uint64) *RLEArray {
	var runVals, runLens []uint64
	for i := 0; i < len(values); {
		j := i
		for j < len(values) && values[j] == values[i] {
			j++
		}
		runVals = append(runVals, values[i])
		runLens = append(runLens, uint64(j-i))
		i = j
	}
	r := &RLEArray{
		runs:   uint64(len(runVals)),
		length: uint64(len(values)),
	}
	r.values = NewBitPacked(runVals)
	r.lengths = NewBitPacked(runLens)
	var offset uint64
	for k := uint64(0); k < uint64(len(runVals)); k++ {
		if k%rleIndexStride == 0 {
			r.index = append(r.index, offset)
		}
		offset += runLens[k]
	}
	return r
}

// Kind identifies the technique.
func (r *RLEArray) Kind() Kind { return RLE }

// Length is the element count.
func (r *RLEArray) Length() uint64 { return r.length }

// Runs is the number of runs.
func (r *RLEArray) Runs() uint64 { return r.runs }

// seekRun locates the run containing element index: binary search the
// sparse index for the last entry with offset <= index, then walk at most
// a stride of runs. Returns the run number and the element offset at
// which that run starts. The caller guarantees index < r.length.
func (r *RLEArray) seekRun(index uint64) (run, start uint64) {
	lo, hi := 0, len(r.index)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.index[mid] <= index {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	run = uint64(lo) * rleIndexStride
	start = r.index[lo]
	for {
		n := r.lengths.Get(run)
		if index < start+n {
			return run, start
		}
		start += n
		run++
	}
}

// Get returns the element at index: binary search the sparse index, then
// walk runs within the stride.
func (r *RLEArray) Get(index uint64) uint64 {
	if index >= r.length {
		panic(fmt.Sprintf("encoding: index %d out of range [0,%d)", index, r.length))
	}
	run, _ := r.seekRun(index)
	return r.values.Get(run)
}

// DecodeInto materializes the whole array into out (which must have
// Length() elements) with one linear walk over the runs — O(n + runs)
// instead of Decode-via-Get's per-element binary search.
func (r *RLEArray) DecodeInto(out []uint64) {
	pos := 0
	for run := uint64(0); run < r.runs; run++ {
		v := r.values.Get(run)
		n := r.lengths.Get(run)
		for end := pos + int(n); pos < end; pos++ {
			out[pos] = v
		}
	}
}

// PayloadBytes is runs (values + lengths) plus the sparse index.
func (r *RLEArray) PayloadBytes() uint64 {
	return r.values.PayloadBytes() + r.lengths.PayloadBytes() + uint64(len(r.index))*8
}

// BulkDecoder is implemented by encodings with a decode path cheaper than
// per-element Get (RLE's linear run walk). Decode prefers it.
type BulkDecoder interface {
	DecodeInto(out []uint64)
}

// Decode materializes any encoding back to a plain slice. It routes
// through the cheapest decode the encoding offers: a bulk decoder if one
// is implemented, then chunk-granular decode for ChunkCodecs, then
// per-element Get as the last resort.
func Decode(e Encoded) []uint64 {
	out := make([]uint64, e.Length())
	DecodeSlice(e, out)
	return out
}

// DecodeSlice is Decode into a caller-provided slice of Length() elements.
func DecodeSlice(e Encoded, out []uint64) {
	n := e.Length()
	switch d := e.(type) {
	case *PlainArray:
		copy(out, d.values)
	case BulkDecoder:
		d.DecodeInto(out)
	case ChunkCodec:
		var buf [bitpack.ChunkSize]uint64
		chunks := n / bitpack.ChunkSize
		for c := uint64(0); c < chunks; c++ {
			d.DecodeChunk(c, &buf)
			copy(out[c*bitpack.ChunkSize:], buf[:])
		}
		if tail := chunks * bitpack.ChunkSize; tail < n {
			d.DecodeChunk(chunks, &buf)
			copy(out[tail:n], buf[:n-tail])
		}
	default:
		for i := uint64(0); i < n; i++ {
			out[i] = e.Get(i)
		}
	}
}

// Build constructs the requested encoding of values.
func Build(kind Kind, values []uint64) (Encoded, error) {
	switch kind {
	case Plain:
		return NewPlain(values), nil
	case BitPacked:
		return NewBitPacked(values), nil
	case Dict:
		return NewDict(values), nil
	case RLE:
		return NewRLE(values), nil
	case Delta:
		return NewDelta(values), nil
	case FoR:
		return NewFoR(values), nil
	default:
		return nil, fmt.Errorf("encoding: unknown kind %v", kind)
	}
}

// Select picks the encoding of values with the smallest payload — the
// paper's envisioned dynamic selection of the compression technique
// (§4.2, §7) — and constructs only the winner. Payloads are computed
// exactly from one Analyze pass over the input (min bits, distinct count,
// run count, delta widths), so selection no longer materializes every
// candidate at full size. The baseline plain encoding wins only if
// nothing beats it; ties go to the earlier candidate in Kinds order.
func Select(values []uint64) (Encoded, error) {
	if len(values) == 0 {
		return nil, errors.New("encoding: empty input")
	}
	stats := Analyze(values)
	best := Kinds[0]
	bestBytes := EstimatePayloadBytes(best, stats)
	for _, k := range Kinds[1:] {
		if b := EstimatePayloadBytes(k, stats); b < bestBytes {
			best, bestBytes = k, b
		}
	}
	return Build(best, values)
}
