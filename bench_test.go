package smartarrays

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its table's rows (real
// scaled execution + paper-scale model) and reports the headline modeled
// quantity as a custom metric, so `go test -bench=.` reproduces the whole
// evaluation. Detailed tables: use the cmd/sabench, cmd/sagraph and
// cmd/saadapt tools.

import (
	"testing"

	"smartarrays/internal/bench"
	"smartarrays/internal/bitpack"
	"smartarrays/internal/core"
	"smartarrays/internal/graph"
	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/rts"
)

func benchOpts() bench.Options {
	return bench.Options{Elements: 1 << 14, GraphVertices: 1000, Verify: true}
}

// BenchmarkTable1Machines re-derives the Table 1 machine models.
func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range bench.Machines() {
			if err := spec.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1PageRankReplication: PageRank original vs replicated on
// the 8-core machine (paper: >2x).
func BenchmarkFigure1PageRankReplication(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		orig, repl, err := bench.RunFigure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = orig.TimeMs / repl.TimeMs
	}
	b.ReportMetric(speedup, "x-speedup")
}

// BenchmarkFigure2Aggregation: the four regimes on the 18-core machine.
func BenchmarkFigure2Aggregation(b *testing.B) {
	var rows []bench.AggResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.RunFigure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TimeMs, "ms-single")
	b.ReportMetric(rows[3].TimeMs, "ms-repl+comp")
}

// BenchmarkFigure3Interop: single-threaded aggregation across the five
// access paths; reports the JNI slowdown.
func BenchmarkFigure3Interop(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure3(bench.Options{Elements: 1 << 14, Verify: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Path == "Java with JNI" {
				ratio = r.RelativeToCPP
			}
		}
	}
	b.ReportMetric(ratio, "x-jni-vs-cpp")
}

// BenchmarkFigure10Sweep: the 84-cell aggregation sweep.
func BenchmarkFigure10Sweep(b *testing.B) {
	opts := bench.Options{Elements: 1 << 12, GraphVertices: 100, Verify: true}
	var n int
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure10(opts)
		if err != nil {
			b.Fatal(err)
		}
		n = len(rows)
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkFigure11DegreeCentrality: the degree centrality series.
func BenchmarkFigure11DegreeCentrality(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		n = len(rows)
	}
	b.ReportMetric(float64(n), "cells")
}

// BenchmarkFigure12PageRank: the PageRank series; reports the V+E memory
// saving (paper: ~21%).
func BenchmarkFigure12PageRank(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var uMem, veMem uint64
		for _, r := range rows {
			if r.Label == "replicated" && r.Compression == "U" {
				uMem = r.MemoryBytes
			}
			if r.Label == "replicated" && r.Compression == "V+E" {
				veMem = r.MemoryBytes
			}
		}
		saving = 100 * (1 - float64(veMem)/float64(uMem))
	}
	b.ReportMetric(saving, "%-mem-saved")
}

// BenchmarkAdaptivity: the §6.3 grid; reports decision accuracy.
func BenchmarkAdaptivity(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		rep := bench.RunAdaptivity()
		acc = 100 * float64(rep.Correct) / float64(rep.Cases)
	}
	b.ReportMetric(acc, "%-correct")
}

// Micro-benchmarks of the hot kernels on real (host) time.

func scanFixture(b *testing.B, bits uint) *core.SmartArray {
	rt := rts.New(machine.UMA(4))
	const n = 1 << 16
	a, err := core.Allocate(rt.Memory(), core.Config{Length: n, Bits: bits, Placement: memsim.Interleaved})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(a.Free)
	mask := a.Codec().Mask()
	for i := uint64(0); i < n; i++ {
		a.Init(0, i, uint64(i)&mask)
	}
	b.SetBytes(n * 8)
	return a
}

func benchScan(b *testing.B, bits uint) {
	a := scanFixture(b, bits)
	n := a.Length()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += core.SumRangeIter(a, 0, 0, n)
	}
	_ = sink
}

func benchFusedSum(b *testing.B, bits uint) {
	a := scanFixture(b, bits)
	n := a.Length()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += core.SumRange(a, 0, 0, n)
	}
	_ = sink
}

// BenchmarkScanU64/U32/Compressed33/Compressed10 measure the chunked
// iterator path (decode into a chunk buffer, then fold).
func BenchmarkScanU64(b *testing.B)          { benchScan(b, 64) }
func BenchmarkScanU32(b *testing.B)          { benchScan(b, 32) }
func BenchmarkScanCompressed33(b *testing.B) { benchScan(b, 33) }
func BenchmarkScanCompressed10(b *testing.B) { benchScan(b, 10) }

// BenchmarkFusedSum* measure the fused word-at-a-time kernels that
// SumRange now routes through (no chunk buffer materialization).
func BenchmarkFusedSumU64(b *testing.B)          { benchFusedSum(b, 64) }
func BenchmarkFusedSumU32(b *testing.B)          { benchFusedSum(b, 32) }
func BenchmarkFusedSumCompressed33(b *testing.B) { benchFusedSum(b, 33) }
func BenchmarkFusedSumCompressed10(b *testing.B) { benchFusedSum(b, 10) }

// BenchmarkFusedCountCompressed10 measures the fused predicate-count
// kernel used by the column-store COUNT fast path.
func BenchmarkFusedCountCompressed10(b *testing.B) {
	a := scanFixture(b, 10)
	n := a.Length()
	thr := a.Codec().Mask() / 2
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += core.CountRange(a, 0, 0, n, bitpack.CmpLe, thr)
	}
	_ = sink
}

// BenchmarkParallelSum measures the runtime's dynamic loop distribution.
func BenchmarkParallelSum(b *testing.B) {
	rt := rts.New(machine.X52Small())
	const n = 1 << 18
	a, err := core.Allocate(rt.Memory(), core.Config{Length: n, Bits: 64, Placement: memsim.Replicated})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Free()
	for i := uint64(0); i < n; i++ {
		a.Init(0, i, uint64(i))
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.ReduceSum(0, n, 0, func(w *rts.Worker, lo, hi uint64) uint64 {
			return core.SumRange(a, w.Socket, lo, hi)
		})
	}
}

// BenchmarkPageRankSmall measures the real PageRank execution path.
func BenchmarkPageRankSmall(b *testing.B) {
	sys := NewSystem(SmallMachine())
	g, err := graph.GeneratePowerLaw(2000, 8, 1.6, 1)
	if err != nil {
		b.Fatal(err)
	}
	sg, err := sys.NewSmartGraph(g, GraphLayout{Placement: Replicated})
	if err != nil {
		b.Fatal(err)
	}
	defer sg.Free()
	cfg := PageRankConfig{Damping: 0.85, Tol: 1e-3, MaxIters: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.PageRank(sg, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
