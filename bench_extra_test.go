package smartarrays

// Benchmarks for the §7 extensions (collections, alternative encodings,
// randomization, AutoNUMA) and the interop boundary costs.

import (
	"math/rand"
	"testing"

	"smartarrays/internal/bench"
	"smartarrays/internal/encoding"
	"smartarrays/internal/interop"
)

// BenchmarkSmartSetContains measures the sorted-set probe (log2 n
// Function 1 gets).
func BenchmarkSmartSetContains(b *testing.B) {
	sys := NewSystem(SmallMachine())
	values := make([]uint64, 1<<16)
	for i := range values {
		values[i] = uint64(i) * 7
	}
	set, err := sys.NewSet(values, Replicated, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer set.Free()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if set.Contains(i&1, uint64(i%len(values))*7) {
			hits++
		}
	}
	if hits != b.N {
		b.Fatalf("lost elements: %d/%d", hits, b.N)
	}
}

// BenchmarkSmartMapGet measures the open-addressing probe over packed
// arrays.
func BenchmarkSmartMapGet(b *testing.B) {
	sys := NewSystem(SmallMachine())
	m, err := sys.NewHashMap(1<<15, 1<<30, 1<<30, Interleaved, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Free()
	for i := uint64(0); i < 1<<15; i++ {
		if err := m.Put(i*2654435761%(1<<30), i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(i&1, uint64(i)*2654435761%(1<<30))
	}
}

// BenchmarkEncodingSelect measures the §4.2 technique selector.
func BenchmarkEncodingSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]uint64, 1<<14)
	for i := range values {
		values[i] = uint64(rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encoding.Select(values); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodingGet compares random access costs across encodings.
func BenchmarkEncodingGet(b *testing.B) {
	values := make([]uint64, 1<<14)
	for i := range values {
		values[i] = uint64(i / 64)
	}
	encs := map[string]encoding.Encoded{
		"plain":     encoding.NewPlain(values),
		"bitpacked": encoding.NewBitPacked(values),
		"dict":      encoding.NewDict(values),
		"rle":       encoding.NewRLE(values),
	}
	for name, e := range encs {
		b.Run(name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += e.Get(uint64(i) & (1<<14 - 1))
			}
			_ = sink
		})
	}
}

// BenchmarkJNIBoundaryCall measures one marshalled boundary crossing.
func BenchmarkJNIBoundaryCall(b *testing.B) {
	sys := NewSystem(SmallMachine())
	ep := sys.EntryPoints()
	h, err := ep.SmartArrayAllocate(1024, 64, Interleaved, 0)
	if err != nil {
		b.Fatal(err)
	}
	j := interop.NewJNIBoundary(ep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Get(h, 0, uint64(i)&1023); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectEntryPointCall is the inlined-path equivalent of the JNI
// benchmark: same logical operation, no marshalling.
func BenchmarkDirectEntryPointCall(b *testing.B) {
	sys := NewSystem(SmallMachine())
	ep := sys.EntryPoints()
	h, err := ep.SmartArrayAllocate(1024, 64, Interleaved, 0)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := ep.ResolveArray(h)
	if err != nil {
		b.Fatal(err)
	}
	replica := arr.GetReplica(0)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += arr.Get(replica, uint64(i)&1023)
	}
	_ = sink
}

// BenchmarkRandomizedGet measures the permutation overhead per access.
func BenchmarkRandomizedGet(b *testing.B) {
	sys := NewSystem(SmallMachine())
	arr, err := sys.Allocate(Config{Length: 1 << 14, Bits: 64, Placement: Interleaved})
	if err != nil {
		b.Fatal(err)
	}
	defer arr.Free()
	r := Randomize(arr, 5)
	for i := uint64(0); i < r.Length(); i++ {
		r.Init(0, i, i)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.GetFrom(0, uint64(i)&(1<<14-1))
	}
	_ = sink
}

// BenchmarkAblations regenerates the full ablation suite.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if secs := bench.RunAblations(); len(secs) != 6 {
			b.Fatalf("sections = %d", len(secs))
		}
	}
}

// BenchmarkColstoreAggregate measures the filtered column scan.
func BenchmarkColstoreAggregate(b *testing.B) {
	sys := NewSystem(SmallMachine())
	const rows = 1 << 16
	table, err := sys.NewTable(rows)
	if err != nil {
		b.Fatal(err)
	}
	defer table.Free()
	qty := make([]uint64, rows)
	price := make([]uint64, rows)
	for i := range qty {
		qty[i] = uint64(i) % 1000
		price[i] = uint64(i) % 65536
	}
	opts := TableOptions{Placement: Replicated}
	if _, err := table.AddColumn("qty", qty, opts); err != nil {
		b.Fatal(err)
	}
	if _, err := table.AddColumn("price", price, opts); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(rows * 2 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.Aggregate(Sum, "price", Pred{Column: "qty", Op: Gt, Value: 900}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossoverSearch measures the boundary finder.
func BenchmarkCrossoverSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := bench.RunCrossovers(); len(pts) != 2 {
			b.Fatal("bad crossover count")
		}
	}
}
