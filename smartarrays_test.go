package smartarrays

import (
	"testing"

	"smartarrays/internal/graph"
)

func TestSystemAllocateAndSum(t *testing.T) {
	sys := NewSystem(LargeMachine())
	arr, err := sys.Allocate(Config{Length: 10_000, Bits: 33, Placement: Replicated})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Free()
	var want uint64
	for i := uint64(0); i < arr.Length(); i++ {
		arr.Init(0, i, i)
		want += i
	}
	if got := sys.SumArray(arr); got != want {
		t.Errorf("SumArray = %d, want %d", got, want)
	}
	if got := SumRange(arr, 1, 0, arr.Length()); got != want {
		t.Errorf("SumRange = %d, want %d", got, want)
	}
}

func TestAllocateForAndMinBits(t *testing.T) {
	sys := NewSystem(SmallMachine())
	arr, err := sys.AllocateFor([]uint64{3, 1, 1023}, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Free()
	if arr.Bits() != 10 {
		t.Errorf("Bits = %d, want 10", arr.Bits())
	}
	if MinBits(1023) != 10 || MinBits(1024) != 11 {
		t.Error("MinBits wrong")
	}
}

func TestIteratorAndMapFacade(t *testing.T) {
	sys := NewSystem(SmallMachine())
	arr, err := sys.Allocate(Config{Length: 256, Bits: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Free()
	for i := uint64(0); i < 256; i++ {
		arr.Init(0, i, i)
	}
	it := NewIterator(arr, 0, 100)
	if it.Get() != 100 {
		t.Errorf("iterator at 100 = %d", it.Get())
	}
	var sum uint64
	Map(arr, 0, 0, 256, func(i, v uint64) { sum += v })
	if sum != 255*256/2 {
		t.Errorf("Map sum = %d", sum)
	}
}

func TestSystemGraphAnalytics(t *testing.T) {
	sys := NewSystem(SmallMachine())
	g, err := graph.GenerateUniform(300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := sys.NewSmartGraph(g, GraphLayout{Placement: Replicated, CompressEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Free()

	deg, err := sys.DegreeCentrality(sg)
	if err != nil {
		t.Fatal(err)
	}
	defer deg.Free()
	if got := deg.GetFrom(0, 5); got != g.OutDegree(5)+g.InDegree(5) {
		t.Errorf("degree(5) = %d", got)
	}

	cfg := PageRankConfig{Damping: 0.85, Tol: 1e-3, MaxIters: 50}
	ranks, iters, err := sys.PageRank(sg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 || len(ranks) != 300 {
		t.Errorf("PageRank returned %d iters, %d ranks", iters, len(ranks))
	}

	levels, err := sys.BFS(sg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels[0] != 0 {
		t.Errorf("BFS source level = %d", levels[0])
	}
}

func TestSystemRecommend(t *testing.T) {
	sys := NewSystem(LargeMachine())
	prof := sys.ProfileScanWorkload(1<<28, 10, 33)
	c := sys.Recommend(Traits{
		ReadOnly:                         true,
		MostlyReads:                      true,
		MultipleLinearAccessesPerElement: true,
	}, prof)
	// On the 18-core machine, the policy should pick a compressed
	// configuration (spare compute hides decompression).
	if !c.Compressed {
		t.Errorf("18-core recommendation = %v, want compression", c)
	}

	small := NewSystem(SmallMachine())
	c2 := small.Recommend(Traits{
		ReadOnly:                         true,
		MostlyReads:                      true,
		MultipleLinearAccessesPerElement: true,
	}, small.ProfileScanWorkload(1<<28, 10, 33))
	if c2.Compressed {
		t.Errorf("8-core recommendation = %v, want no compression", c2)
	}
	if c2.Placement != Replicated {
		t.Errorf("8-core placement = %v, want replicated", c2.Placement)
	}
}

func TestEntryPointsFacade(t *testing.T) {
	sys := NewSystem(SmallMachine())
	h, err := sys.EntryPoints().SmartArrayAllocate(64, 33, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EntryPoints().SmartArrayInit(h, 0, 3, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := sys.EntryPoints().SmartArrayGet(h, 0, 3); v != 42 {
		t.Errorf("entry point get = %d", v)
	}
	if err := sys.EntryPoints().SmartArrayFree(h); err != nil {
		t.Fatal(err)
	}
}

func TestFillArrayParallelAndFirstTouch(t *testing.T) {
	sys := NewSystem(SmallMachine())
	arr, err := sys.Allocate(Config{Length: 1 << 16, Bits: 33, Placement: OSDefault})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Free()
	sys.FillArray(arr, func(i uint64) uint64 { return (i * 3) & ((1 << 33) - 1) })
	for _, i := range []uint64{0, 1, 1 << 10, 1<<16 - 1} {
		if got := arr.GetFrom(0, i); got != (i*3)&((1<<33)-1) {
			t.Fatalf("elem %d = %d", i, got)
		}
	}
	// Multi-threaded first touch spreads pages across both sockets.
	region := arr.Region()
	homes := map[int]bool{}
	for w := uint64(0); w < arr.WordOf(arr.Length()-1); w += 512 {
		homes[region.HomeSocket(w, 0)] = true
	}
	if len(homes) != 2 {
		t.Errorf("multi-threaded fill touched %d socket(s), want 2", len(homes))
	}
}
