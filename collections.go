package smartarrays

import (
	"smartarrays/internal/collections"
	"smartarrays/internal/core"
	"smartarrays/internal/encoding"
)

// Smart collections (paper §7): sets and maps whose storage is smart
// arrays, inheriting placement and compression without re-implementation.
type (
	// Set is an immutable sorted set over a bit-compressed smart array.
	Set = collections.SmartSet
	// HashMap is a read-optimized open-addressing map over smart arrays.
	HashMap = collections.SmartMap
)

// NewSet builds a set from values (deduplicated, sorted, packed at the
// minimum width) with the given placement.
func (s *System) NewSet(values []uint64, p Placement, socket int) (*Set, error) {
	return collections.NewSmartSet(s.rt.Memory(), values, p, socket)
}

// NewHashMap creates a map with capacity for n entries whose keys and
// values are packed at the minimum widths for maxKey/maxValue.
func (s *System) NewHashMap(n, maxKey, maxValue uint64, p Placement, socket int) (*HashMap, error) {
	return collections.NewSmartMap(s.rt.Memory(), n, maxKey, maxValue, p, socket)
}

// Alternative compression techniques (paper §4.2/§7): dictionary and
// run-length encoding with automatic technique selection.
type (
	// Encoded is the common interface over an encoded array.
	Encoded = encoding.Encoded
	// EncodingKind identifies a technique.
	EncodingKind = encoding.Kind
)

// Encoding technique identifiers.
const (
	EncodingPlain     = encoding.Plain
	EncodingBitPacked = encoding.BitPacked
	EncodingDict      = encoding.Dict
	EncodingRLE       = encoding.RLE
)

// SelectEncoding builds all candidate encodings of values and returns the
// smallest — the paper's envisioned dynamic selection of the compression
// technique.
func SelectEncoding(values []uint64) (Encoded, error) {
	return encoding.Select(values)
}

// RandomizedArray is the §7 randomization functionality: index remapping
// that spreads hot neighbours across memory channels.
type RandomizedArray = core.RandomizedArray

// Randomize wraps an array with an index permutation derived from seed.
func Randomize(a *Array, seed uint64) *RandomizedArray {
	return core.NewRandomized(a, seed)
}
