# Single entry point for local runs and CI (.github/workflows/ci.yml calls
# these targets, so the two can never drift).

GO ?= go
FUZZTIME ?= 10s
# Allowed ns/op regression (percent) for the bench gate.
MAX_REGRESS ?= 25

.PHONY: all build test race fmt vet lint fuzz-smoke bench-smoke bench-baseline load-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips gracefully when staticcheck is not on
# PATH (no-network sandboxes); the CI lint job installs a pinned version.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (CI runs it; install with:"; \
		echo "      go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

# Run every fuzz target briefly so corpus regressions surface in PRs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzCmpMask$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzGather$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzJNIDispatch$$' -fuzztime $(FUZZTIME) ./internal/interop
	$(GO) test -run '^$$' -fuzz '^FuzzEncodingRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/encoding

# Bench gate: regenerate the Figure 2 smoke report and diff its modeled
# ns/op against the checked-in baseline. The model is deterministic, so
# any drift is a real change. Override with BENCH_GATE_OVERRIDE=1 (or the
# "perf-intentional" PR label in CI), or regenerate the baseline with
# `make bench-baseline` when the change is intentional.
bench-smoke:
	$(GO) run ./cmd/sabench -fig 2 -kernels -codecs -elements 65536 -metrics-out bench_report.json
	$(GO) run ./cmd/sagate -baseline bench_baseline.json -current bench_report.json -max-regress-pct $(MAX_REGRESS)

bench-baseline:
	$(GO) run ./cmd/sabench -fig 2 -kernels -elements 65536 -metrics-out bench_baseline.json

# Query-service load gate: start saserve on a small dataset, drive it with
# concurrent clients, and assert zero 5xx, non-zero qps, and a generous
# p99 bound (see scripts/load_smoke.sh for the knobs).
load-smoke:
	sh scripts/load_smoke.sh

# Everything CI runs, in one shot. Targets run to completion even after a
# failure so one run reports every broken target, and the summary at the
# end names the ones that failed.
CI_TARGETS := build vet fmt lint test race fuzz-smoke bench-smoke load-smoke

ci:
	@failed=""; \
	for t in $(CI_TARGETS); do \
		echo "==> make $$t"; \
		$(MAKE) --no-print-directory $$t || failed="$$failed $$t"; \
	done; \
	if [ -n "$$failed" ]; then \
		echo ""; echo "ci: FAILED targets:$$failed"; exit 1; \
	fi; \
	echo ""; echo "ci: all targets passed ($(CI_TARGETS))"
