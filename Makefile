# Single entry point for local runs and CI (.github/workflows/ci.yml calls
# these targets, so the two can never drift).

GO ?= go
FUZZTIME ?= 10s
# Allowed ns/op regression (percent) for the bench gate.
MAX_REGRESS ?= 25

.PHONY: all build test race fmt vet fuzz-smoke bench-smoke bench-baseline ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Run every fuzz target briefly so corpus regressions surface in PRs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzCmpMask$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzGather$$' -fuzztime $(FUZZTIME) ./internal/bitpack
	$(GO) test -run '^$$' -fuzz '^FuzzReadEdgeList$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzJNIDispatch$$' -fuzztime $(FUZZTIME) ./internal/interop

# Bench gate: regenerate the Figure 2 smoke report and diff its modeled
# ns/op against the checked-in baseline. The model is deterministic, so
# any drift is a real change. Override with BENCH_GATE_OVERRIDE=1 (or the
# "perf-intentional" PR label in CI), or regenerate the baseline with
# `make bench-baseline` when the change is intentional.
bench-smoke:
	$(GO) run ./cmd/sabench -fig 2 -kernels -elements 65536 -metrics-out bench_report.json
	$(GO) run ./cmd/sagate -baseline bench_baseline.json -current bench_report.json -max-regress-pct $(MAX_REGRESS)

bench-baseline:
	$(GO) run ./cmd/sabench -fig 2 -kernels -elements 65536 -metrics-out bench_baseline.json

# Everything CI runs, in one shot.
ci: build vet fmt test race fuzz-smoke bench-smoke
