#!/bin/sh
# Load-harness smoke gate: build saserve and saload, start the server on
# an ephemeral port with a small dataset, spot-check served results
# against the dataset checksums, then drive it with 8 concurrent clients
# for 2 seconds. Fails on any 5xx, zero throughput, or a p99 above a
# deliberately generous bound (this is a correctness/liveness gate, not a
# perf gate — the bench gate owns performance).
#
# Usage: scripts/load_smoke.sh [duration] [concurrency]
# Called by `make load-smoke`, locally and in CI.
set -eu

DURATION="${1:-2s}"
CONCURRENCY="${2:-8}"
MAX_P99_MS="${LOAD_SMOKE_MAX_P99_MS:-10000}"
ROWS="${LOAD_SMOKE_ROWS:-200000}"
VERTICES="${LOAD_SMOKE_VERTICES:-5000}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "load-smoke: building saserve and saload"
go build -o "$WORK/saserve" ./cmd/saserve
go build -o "$WORK/saload" ./cmd/saload

"$WORK/saserve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -rows "$ROWS" -vertices "$VERTICES" -cache 1024 2>"$WORK/saserve.log" &
SERVER_PID=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: server never came up" >&2
        cat "$WORK/saserve.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "load-smoke: server exited during startup" >&2
        cat "$WORK/saserve.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="$(cat "$WORK/addr")"
echo "load-smoke: server on $ADDR (pid $SERVER_PID)"

# Spot check + load + gates: zero 5xx, non-zero qps, generous p99 bound.
# The report asserts at least 2 concurrent in-flight queries were
# observed — the whole point of the scheduler.
"$WORK/saload" -addr "$ADDR" -duration "$DURATION" -concurrency "$CONCURRENCY" \
    -spot-check -report saload_report.json \
    -max-5xx 0 -min-qps 1 -max-p99-ms "$MAX_P99_MS"

MAX_INFLIGHT="$(sed -n 's/.*"max_in_flight_observed": \([0-9]*\).*/\1/p' saload_report.json)"
if [ -z "$MAX_INFLIGHT" ] || [ "$MAX_INFLIGHT" -lt 2 ]; then
    echo "load-smoke: FAILED: max in-flight observed was ${MAX_INFLIGHT:-0}, want >= 2 concurrent queries" >&2
    exit 1
fi

# Repeated-query phase: the default mix has a fixed body set, so with the
# result cache on (saserve -cache) the second run must land server-side
# hits. -min-cache-hits turns that into a hard gate.
echo "load-smoke: repeated-query phase (result cache)"
"$WORK/saload" -addr "$ADDR" -duration 1s -concurrency "$CONCURRENCY" \
    -spot-check=false -report saload_cache_report.json \
    -max-5xx 0 -min-qps 1 -min-cache-hits 1

# Shared-scan phase: a second server with the result cache OFF (so every
# duplicate plan actually executes) and sharing on. Many clients hammering
# the small table-scan mix must coalesce into cooperative batches:
# -min-shared-batches asserts at least one multi-query pass happened, and
# the qps floor catches a coordinator that serializes instead of sharing.
echo "load-smoke: shared-scan phase (cache off, high-concurrency duplicate plans)"
SHARED_CONCURRENCY="${LOAD_SMOKE_SHARED_CONCURRENCY:-32}"
"$WORK/saserve" -addr 127.0.0.1:0 -addr-file "$WORK/addr2" \
    -rows "$ROWS" -vertices 0 -cache 0 -shared 2>"$WORK/saserve2.log" &
SERVER2_PID=$!
cleanup2() {
    if [ -n "$SERVER2_PID" ]; then
        kill "$SERVER2_PID" 2>/dev/null || true
        wait "$SERVER2_PID" 2>/dev/null || true
    fi
}
trap 'cleanup2; cleanup' EXIT INT TERM

i=0
while [ ! -s "$WORK/addr2" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: shared-scan server never came up" >&2
        cat "$WORK/saserve2.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVER2_PID" 2>/dev/null; then
        echo "load-smoke: shared-scan server exited during startup" >&2
        cat "$WORK/saserve2.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR2="$(cat "$WORK/addr2")"
echo "load-smoke: shared-scan server on $ADDR2 (pid $SERVER2_PID)"

"$WORK/saload" -addr "$ADDR2" -duration 1s -concurrency "$SHARED_CONCURRENCY" \
    -agg-only -spot-check=false -report saload_shared_report.json \
    -max-5xx 0 -min-qps 1 -min-shared-batches 1

# Profiling phase: a third server with BOTH the cache and shared scans
# off — every query actually executes, and execution cost is stable run
# to run (cooperative batching is adaptive, so a shared server's qps is
# legitimately bimodal and would flake a tight A/B gate). Two runs
# distinguished only by the profile sampling rate swapped through the
# control plane: the baseline runs unprofiled, the profiled run samples
# every query and spreads load over two tenants, and the gates assert
# (a) qps degraded at most LOAD_SMOKE_MAX_PROFILE_OVERHEAD_PCT vs the
# baseline, (b) the slow-query log actually retained profiles, (c) the
# server accumulated per-tenant RED series.
MAX_PROFILE_OVERHEAD_PCT="${LOAD_SMOKE_MAX_PROFILE_OVERHEAD_PCT:-5}"
echo "load-smoke: profiling phase (always-on profiles vs unprofiled baseline)"
"$WORK/saserve" -addr 127.0.0.1:0 -addr-file "$WORK/addr3" \
    -rows "$ROWS" -vertices 0 -cache 0 -shared=false 2>"$WORK/saserve3.log" &
SERVER3_PID=$!
cleanup3() {
    if [ -n "$SERVER3_PID" ]; then
        kill "$SERVER3_PID" 2>/dev/null || true
        wait "$SERVER3_PID" 2>/dev/null || true
    fi
}
trap 'cleanup3; cleanup2; cleanup' EXIT INT TERM

i=0
while [ ! -s "$WORK/addr3" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: profiling server never came up" >&2
        cat "$WORK/saserve3.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVER3_PID" 2>/dev/null; then
        echo "load-smoke: profiling server exited during startup" >&2
        cat "$WORK/saserve3.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR3="$(cat "$WORK/addr3")"
echo "load-smoke: profiling server on $ADDR3 (pid $SERVER3_PID)"

# Unprofiled baseline: median of three runs. Single-run A/B on a busy
# CI host has more variance than the overhead bound; the median shakes
# out transient slowdowns in either direction.
for b in 1 2 3; do
    "$WORK/saload" -addr "$ADDR3" -duration "$DURATION" -concurrency "$CONCURRENCY" \
        -agg-only -spot-check=false -set-profile-sample 0 \
        -report saload_baseline_report.json \
        -max-5xx 0 -min-qps 1
    q="$(sed -n 's/.*"qps": \([0-9.]*\).*/\1/p' saload_baseline_report.json)"
    if [ -z "$q" ]; then
        echo "load-smoke: FAILED: no qps in saload_baseline_report.json" >&2
        exit 1
    fi
    echo "$q" >> "$WORK/baseline_qps"
done
BASELINE_QPS="$(sort -g "$WORK/baseline_qps" | sed -n 2p)"
echo "load-smoke: baseline qps (median of 3): $BASELINE_QPS"

# Profiled run, gated: up to three attempts. A genuine overhead
# regression fails every attempt; a one-off noisy draw does not.
attempt=1
while :; do
    if "$WORK/saload" -addr "$ADDR3" -duration "$DURATION" -concurrency "$CONCURRENCY" \
        -agg-only -spot-check=false -set-profile-sample 1 -tenants 2 \
        -report saload_profile_report.json \
        -max-5xx 0 -min-qps 1 \
        -baseline-qps "$BASELINE_QPS" -max-profile-overhead-pct "$MAX_PROFILE_OVERHEAD_PCT" \
        -min-slowlog-entries 1 -min-tenant-series 2; then
        break
    fi
    if [ "$attempt" -ge 3 ]; then
        echo "load-smoke: FAILED: profiling gates failed on all $attempt attempts" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
    echo "load-smoke: profiling gate flaked, retrying (attempt $attempt of 3)"
done

echo "load-smoke: PASSED (reports in saload_report.json, saload_cache_report.json, saload_shared_report.json, saload_baseline_report.json, saload_profile_report.json)"
