package smartarrays

// End-to-end scenarios across the whole stack: facade + runtime + memory
// capacity + adaptivity + guest language, the flows a downstream adopter
// would run.

import (
	"bytes"
	"testing"

	"smartarrays/internal/graph"
	"smartarrays/internal/minivm"
)

// TestEndToEndCapacityPressure: when uncompressed replicas do not fit but
// compressed ones do, the adaptivity engine must route through Figure
// 13b's second space test and still replicate — compressed.
func TestEndToEndCapacityPressure(t *testing.T) {
	sys := NewSystem(LargeMachine())
	const n = 1 << 20 // 8 MiB per uncompressed copy

	// Shrink simulated DRAM so an uncompressed replica cannot fit
	// alongside the existing array, but a 16-bit compressed one can:
	// per socket, the interleaved original occupies n*8/2 bytes; a full
	// uncompressed replica needs n*8 more (total 12 MiB > 8 MiB), a
	// 16-bit one only n*2 (6 MiB <= 8 MiB).
	sys.Runtime().Memory().SetCapacityBytes(n * 8)

	arr, err := sys.Allocate(Config{Length: n, Bits: 64, Placement: Interleaved})
	if err != nil {
		t.Fatal(err)
	}
	defer arr.Free()
	for i := uint64(0); i < n; i++ {
		arr.Init(0, i, i&0xFFFF)
	}

	profile := sys.ProfileScanWorkload(n, 10, 16)
	// The facade derived the space bits from the shrunken capacity.
	if profile.SpaceForUncompressedReplication {
		t.Fatal("uncompressed replication should not fit")
	}
	if !profile.SpaceForCompressedReplication {
		t.Fatal("compressed replication should fit")
	}

	choice := sys.Recommend(Traits{
		ReadOnly: true, MostlyReads: true,
		MultipleLinearAccessesPerElement: true,
	}, profile)
	if !choice.Compressed || choice.Placement != Replicated {
		t.Fatalf("under capacity pressure, decision = %v; want compressed replication", choice)
	}

	// Apply it for real: re-encode at 16 bits, replicate, verify.
	packed, err := sys.Allocate(Config{Length: n, Bits: 16, Placement: Interleaved})
	if err != nil {
		t.Fatal(err)
	}
	defer packed.Free()
	replica := arr.GetReplica(0)
	for i := uint64(0); i < n; i++ {
		packed.Init(0, i, arr.Get(replica, i))
	}
	if _, err := packed.Migrate(choice.Placement, choice.Socket); err != nil {
		t.Fatalf("compressed replication should fit in the shrunken memory: %v", err)
	}
	if got, want := sys.SumArray(packed), sys.SumArray(arr); got != want {
		t.Fatalf("re-encoded sum %d != %d", got, want)
	}
	// And the uncompressed replication must indeed fail for real.
	if _, err := arr.Migrate(Replicated, 0); err == nil {
		t.Fatal("uncompressed replication unexpectedly fit")
	}
}

// TestEndToEndGuestLanguageSeesMigration: a guest-language program keeps
// computing correct results while the host migrates the array between
// placements (replica selection is behind the entry points).
func TestEndToEndGuestLanguageSeesMigration(t *testing.T) {
	sys := NewSystem(SmallMachine())
	ep := sys.EntryPoints()
	const n = 1 << 12
	h, err := ep.SmartArrayAllocate(n, 20, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := uint64(0); i < n; i++ {
		v := (i * 17) & 0xFFFFF
		if err := ep.SmartArrayInit(h, 0, i, v); err != nil {
			t.Fatal(err)
		}
		want += v
	}
	runGuestSum := func() uint64 {
		vm, err := minivm.New(minivm.SumIterProgram(n), []*minivm.ArrayBinding{{
			Path: minivm.PathSmart, EP: ep, Handle: h, Socket: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.BindIter(0, 0, 0); err != nil {
			t.Fatal(err)
		}
		cp, err := vm.Compile()
		if err != nil {
			t.Fatal(err)
		}
		got, err := cp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := runGuestSum(); got != want {
		t.Fatalf("guest sum before migration = %d, want %d", got, want)
	}
	arr, err := ep.ResolveArray(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Placement{Replicated, SingleSocket, Interleaved} {
		if _, err := arr.Migrate(p, 0); err != nil {
			t.Fatal(err)
		}
		if got := runGuestSum(); got != want {
			t.Fatalf("guest sum under %v = %d, want %d", p, got, want)
		}
	}
	if err := ep.SmartArrayFree(h); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndGraphPipeline: generate -> serialize -> reload -> smart
// arrays -> analytics, with identical results before and after the I/O
// round trip.
func TestEndToEndGraphPipeline(t *testing.T) {
	sys := NewSystem(SmallMachine())
	g1, err := graph.GeneratePowerLaw(2000, 6, 1.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := PageRankConfig{Damping: 0.85, Tol: 1e-3, MaxIters: 100}
	sg1, err := sys.NewSmartGraph(g1, GraphLayout{Placement: Replicated, CompressBegin: true, CompressEdge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sg1.Free()
	sg2, err := sys.NewSmartGraph(g2, GraphLayout{Placement: Interleaved})
	if err != nil {
		t.Fatal(err)
	}
	defer sg2.Free()

	r1, it1, err := sys.PageRank(sg1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, it2, err := sys.PageRank(sg2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if it1 != it2 {
		t.Fatalf("iteration counts differ after I/O round trip: %d vs %d", it1, it2)
	}
	for v := range r1 {
		if d := r1[v] - r2[v]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("rank[%d] differs after I/O round trip", v)
		}
	}
}

// TestEndToEndCollections: collections on top of the same memory
// accounting as arrays — allocations must balance to zero.
func TestEndToEndCollections(t *testing.T) {
	sys := NewSystem(SmallMachine())
	mem := sys.Runtime().Memory()
	base := mem.TotalUsedBytes()

	set, err := sys.NewSet([]uint64{5, 10, 15}, Replicated, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.NewHashMap(100, 1000, 1000, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if !set.Contains(1, 10) {
		t.Error("set lost an element")
	}
	if v, ok := m.Get(1, 5); !ok || v != 50 {
		t.Error("map lost an entry")
	}
	if mem.TotalUsedBytes() <= base {
		t.Error("collections consumed no simulated memory")
	}
	set.Free()
	m.Free()
	if got := mem.TotalUsedBytes(); got != base {
		t.Errorf("leaked %d simulated bytes", got-base)
	}
}
