package smartarrays

import (
	"smartarrays/internal/colstore"
)

// Column-store layer (the paper's §5.1 database-analytics motivation):
// tables of bit-compressed smart-array columns with parallel filtered
// aggregation and group-by.
type (
	// Table is a fixed-length collection of packed columns.
	Table = colstore.Table
	// TableOptions configure column placement.
	TableOptions = colstore.Options
	// Pred is a column-versus-constant predicate.
	Pred = colstore.Pred
	// GroupRow is one group-by output row.
	GroupRow = colstore.GroupRow
)

// Comparison operators for predicates.
const (
	Eq = colstore.Eq
	Ne = colstore.Ne
	Lt = colstore.Lt
	Le = colstore.Le
	Gt = colstore.Gt
	Ge = colstore.Ge
)

// Aggregate functions.
const (
	Sum   = colstore.Sum
	Count = colstore.Count
	Min   = colstore.Min
	Max   = colstore.Max
)

// NewTable creates an empty table with the given row count on this
// system's runtime.
func (s *System) NewTable(rows uint64) (*Table, error) {
	return colstore.NewTable(s.rt, rows)
}
