module smartarrays

go 1.22
