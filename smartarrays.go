// Package smartarrays is a Go reproduction of "Analytics with Smart
// Arrays: Adaptive and Efficient Language-Independent Data" (Psaroudakis
// et al., EuroSys 2018).
//
// Smart arrays are arrays whose "smart functionalities" trade hardware
// resources against each other: NUMA-aware data placement (OS default,
// single socket, interleaved, replicated) and bit compression (1–64 bits
// per element). A single implementation serves multiple languages through
// a scalar entry-point ABI, and an adaptivity engine picks the
// configuration predicted fastest from profiled counters.
//
// The package is a thin facade over the internal implementation:
//
//	sys := smartarrays.NewSystem(smartarrays.LargeMachine())
//	arr, _ := sys.Allocate(smartarrays.Config{
//	        Length:    1 << 20,
//	        Bits:      33,
//	        Placement: smartarrays.Replicated,
//	})
//	for i := uint64(0); i < arr.Length(); i++ {
//	        arr.Init(0, i, i)
//	}
//	sum := sys.SumArray(arr)
//
// Because Go cannot pin pages to NUMA nodes, the machine is simulated: a
// declarative topology (the paper's two Oracle X5-2 machines are presets),
// page-granular placement with real backing storage, and a calibrated
// bottleneck model that converts accounted traffic into modeled time and
// bandwidth. See DESIGN.md for the substitution rationale and
// EXPERIMENTS.md for paper-versus-measured results.
package smartarrays

import (
	"smartarrays/internal/adapt"
	"smartarrays/internal/analytics"
	"smartarrays/internal/bitpack"
	"smartarrays/internal/core"
	"smartarrays/internal/graph"
	"smartarrays/internal/interop"
	"smartarrays/internal/machine"
	"smartarrays/internal/memsim"
	"smartarrays/internal/perfmodel"
	"smartarrays/internal/rts"
)

// Core array types.
type (
	// Array is a smart array (placement × compression behind one API).
	Array = core.SmartArray
	// Config describes an array to allocate.
	Config = core.Config
	// Iterator is the forward-scan iterator (paper Figure 9).
	Iterator = core.Iterator
	// Placement is a NUMA data placement policy.
	Placement = memsim.Placement
	// Machine is a declarative NUMA machine description (paper Table 1).
	Machine = machine.Spec
	// Worker is a socket-pinned runtime worker.
	Worker = rts.Worker
)

// Placement policies (paper §4.1).
const (
	// OSDefault places pages on the first-touching thread's socket.
	OSDefault = memsim.OSDefault
	// SingleSocket pins all pages to one socket.
	SingleSocket = memsim.SingleSocket
	// Interleaved round-robins pages across sockets.
	Interleaved = memsim.Interleaved
	// Replicated keeps one full copy per socket.
	Replicated = memsim.Replicated
)

// Adaptivity types (paper §6).
type (
	// Traits are programmer-declared workload characteristics.
	Traits = adapt.Traits
	// Profile is a measured workload profile.
	Profile = adapt.Profile
	// Candidate is a recommended configuration.
	Candidate = adapt.Candidate
)

// Graph analytics types (paper §5.2).
type (
	// Graph is a CSR graph.
	Graph = graph.CSR
	// SmartGraph is a CSR graph materialized in smart arrays.
	SmartGraph = graph.SmartCSR
	// GraphLayout selects the graph arrays' placement and compression.
	GraphLayout = graph.Layout
	// PageRankConfig parameterizes PageRank.
	PageRankConfig = analytics.PageRankConfig
)

// SmallMachine returns the paper's 2×8-core Xeon (Table 1): low
// interconnect bandwidth, where replication shines and compression hurts.
func SmallMachine() *Machine { return machine.X52Small() }

// LargeMachine returns the paper's 2×18-core Xeon (Table 1): high
// interconnect bandwidth, where compression helps every placement.
func LargeMachine() *Machine { return machine.X52Large() }

// NewIterator allocates an iterator over the array for a reader on socket.
func NewIterator(a *Array, socket int, index uint64) Iterator {
	return core.NewIterator(a, socket, index)
}

// SumRange aggregates a[lo:hi] through the width-specialized iterator.
func SumRange(a *Array, socket int, lo, hi uint64) uint64 {
	return core.SumRange(a, socket, lo, hi)
}

// Map applies fn over a[lo:hi], unpacking whole chunks (the §7 bounded-map
// API).
func Map(a *Array, socket int, lo, hi uint64, fn func(index, value uint64)) {
	core.Map(a, socket, lo, hi, fn)
}

// MinBits returns the minimum element width for maxValue (the compression
// rule of §4.2).
func MinBits(maxValue uint64) uint { return bitpack.MinBits(maxValue) }

// System bundles a simulated machine, its runtime, memory, and entry
// points — everything needed to allocate and operate smart arrays.
type System struct {
	rt *rts.Runtime
	ep *interop.EntryPoints
}

// NewSystem creates a system for the given machine (see SmallMachine,
// LargeMachine, or build a custom Machine).
func NewSystem(spec *Machine) *System {
	rt := rts.New(spec)
	return &System{rt: rt, ep: interop.NewEntryPoints(rt.Memory())}
}

// Spec returns the machine description.
func (s *System) Spec() *Machine { return s.rt.Spec() }

// Runtime exposes the Callisto-style parallel runtime.
func (s *System) Runtime() *rts.Runtime { return s.rt }

// EntryPoints exposes the language-independent entry-point ABI, the
// surface guest languages (see internal/minivm) call.
func (s *System) EntryPoints() *interop.EntryPoints { return s.ep }

// Allocate creates a smart array.
func (s *System) Allocate(cfg Config) (*Array, error) {
	return core.Allocate(s.rt.Memory(), cfg)
}

// AllocateFor creates and fills a smart array from values, using the
// minimum width that fits them.
func (s *System) AllocateFor(values []uint64, p Placement, socket int) (*Array, error) {
	return core.AllocateFor(s.rt.Memory(), values, p, socket)
}

// ParallelFor runs body over [begin, end) with dynamic batch distribution
// across all simulated hardware threads.
func (s *System) ParallelFor(begin, end uint64, grain int64, body func(w *Worker, lo, hi uint64)) {
	s.rt.ParallelFor(begin, end, grain, body)
}

// SumArray aggregates the whole array in parallel — the paper's canonical
// workload (§5.1).
func (s *System) SumArray(a *Array) uint64 {
	return s.rt.ReduceSum(0, a.Length(), 0, func(w *Worker, lo, hi uint64) uint64 {
		return core.SumRange(a, w.Socket, lo, hi)
	})
}

// FillArray initializes the whole array in parallel from fn(index).
// Batches are chunk-aligned, so concurrent writers never share packed
// words. Multi-threaded initialization is also what makes the OS-default
// placement spread across sockets via first touch (§4.1) — in contrast to
// the single-threaded loop of the paper's aggregation setup.
func (s *System) FillArray(a *Array, fn func(index uint64) uint64) {
	s.rt.ParallelFor(0, a.Length(), 0, func(w *Worker, lo, hi uint64) {
		for i := lo; i < hi; i++ {
			a.Init(w.Socket, i, fn(i))
		}
	})
}

// NewSmartGraph materializes a CSR graph into smart arrays per the layout.
func (s *System) NewSmartGraph(g *Graph, layout GraphLayout) (*SmartGraph, error) {
	return graph.NewSmartCSR(s.rt.Memory(), g, layout)
}

// PageRank runs the paper's PageRank over a smart graph, returning ranks
// and the iteration count.
func (s *System) PageRank(g *SmartGraph, cfg PageRankConfig) ([]float64, int, error) {
	ranks, iters, _, err := analytics.PageRank(s.rt, g, cfg)
	return ranks, iters, err
}

// DegreeCentrality computes out+in degrees per vertex into a new
// interleaved output array.
func (s *System) DegreeCentrality(g *SmartGraph) (*Array, error) {
	out, _, err := analytics.DegreeCentrality(s.rt, g)
	return out, err
}

// BFS runs a breadth-first search from src, returning levels (-1 for
// unreachable).
func (s *System) BFS(g *SmartGraph, src uint64) ([]int64, error) {
	levels, _, _, err := analytics.BFS(s.rt, g, src)
	return levels, err
}

// Recommend runs the §6 adaptivity pipeline over a measured profile.
func (s *System) Recommend(tr Traits, p *Profile) Candidate {
	return adapt.Decide(s.rt.Spec(), tr, p)
}

// ProfileScanWorkload models the flexible measurement run (uncompressed,
// interleaved) for a scan over totalElements 64-bit elements read
// timesEach times, and derives the adaptivity profile, proposing
// compression at compressedBits. It is the programmatic equivalent of the
// paper's counter-based measurement step.
func (s *System) ProfileScanWorkload(totalElements uint64, timesEach float64, compressedBits uint) *Profile {
	bytes := float64(totalElements) * 8 * timesEach
	w := perfmodel.Workload{
		Instructions: float64(totalElements) * timesEach * perfmodel.CostScanU64,
		Streams: []perfmodel.Stream{
			{Kind: perfmodel.Read, Bytes: bytes, Placement: memsim.Interleaved},
		},
	}
	res := perfmodel.Solve(s.rt.Spec(), w)
	mem := s.rt.Memory()
	words := totalElements // 64-bit words
	compWords := words * uint64(compressedBits) / 64
	return adapt.ProfileFromResult(s.rt.Spec(), res, adapt.ProfileOpts{
		Accesses:              float64(totalElements) * timesEach,
		CompressedBits:        compressedBits,
		UncompressedBits:      64,
		SpaceUncompressedRepl: mem.CanAlloc(words, memsim.Replicated, 0),
		SpaceCompressedRepl:   mem.CanAlloc(compWords, memsim.Replicated, 0),
	})
}
