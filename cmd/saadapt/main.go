// Command saadapt evaluates the adaptivity engine (paper §6.3) over the
// benchmark grid, reporting decision accuracy, regret, and the improvement
// over the best static configuration. With -table2 it prints the paper's
// trade-off matrix; with -multi it demonstrates the multi-array extension
// (the joint placement the paper lists as future work) on the PageRank
// array set.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/adapt"
	"smartarrays/internal/bench"
	"smartarrays/internal/machine"
)

func main() {
	verbose := flag.Bool("v", false, "print every decision in the grid")
	table2 := flag.Bool("table2", false, "print Table 2 (trade-offs) and exit")
	multi := flag.Bool("multi", false, "demonstrate multi-array joint placement (PageRank array set)")
	flag.Parse()

	switch {
	case *table2:
		bench.PrintTable2(os.Stdout)
	case *multi:
		runMulti()
	default:
		rep := bench.RunAdaptivity()
		bench.PrintAdaptReport(os.Stdout, rep, *verbose)
	}
}

// runMulti jointly places the PageRank arrays (Twitter scale) on the
// 8-core machine at several memory budgets.
func runMulti() {
	spec := machine.X52Small()
	usages := []adapt.ArrayUsage{
		{Name: "ranks", PayloadBytes: 336e6, RandomBytes: 62e9, ScanBytes: 0.34e9, ReadOnly: true},
		{Name: "redge", PayloadBytes: 6e9, ScanBytes: 6e9, ReadOnly: true},
		{Name: "rbegin", PayloadBytes: 336e6, ScanBytes: 0.34e9, ReadOnly: true},
		{Name: "out-degrees", PayloadBytes: 336e6, RandomBytes: 3e9, ReadOnly: true},
		{Name: "next-ranks", PayloadBytes: 336e6, WriteBytes: 0.34e9},
	}
	const instr = 50e9
	fmt.Printf("Multi-array placement for PageRank on %s (one iteration)\n", spec.Name)
	for _, budget := range []uint64{128 << 30, 7 << 30, 4 << 30} {
		ds, res := adapt.DecideMulti(spec, budget, instr, usages)
		fmt.Printf("  memory budget %3d GB/socket -> %.0f ms/iter, bottleneck %s\n",
			budget>>30, res.Seconds*1e3, res.Bottleneck)
		for _, d := range ds {
			fmt.Printf("      %s\n", d)
		}
	}
}
