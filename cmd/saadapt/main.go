// Command saadapt evaluates the adaptivity engine (paper §6.3) over the
// benchmark grid, reporting decision accuracy, regret, and the improvement
// over the best static configuration. With -table2 it prints the paper's
// trade-off matrix; with -multi it demonstrates the multi-array extension
// (the joint placement the paper lists as future work) on the PageRank
// array set.
//
// With -live it runs the drifting-workload demonstration: a scan-profiled
// §6 decision re-scored against live per-array telemetry until the access
// pattern flips it, emitting DecisionDrift audit events.
//
// With -reencode it runs the representation-drift demonstration: a
// clustered column migrates bit-packed -> RLE under fused scans, then
// back to uncompressed once random gathers dominate the measured mix,
// emitting Reencode audit events.
//
// Observability: -trace writes one structured decision event per
// adaptivity step (candidate set, profiled counter inputs, chosen
// configuration, estimated vs realized cost) as JSONL; -metrics-out
// writes the recorder's aggregate metrics; -serve exposes the live
// introspection endpoints (/metrics /arrays /trace /decisions);
// -pprof/-cpuprofile/-memprofile profile the evaluation itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/adapt"
	"smartarrays/internal/bench"
	"smartarrays/internal/core"
	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/obs/serve"
)

func main() {
	verbose := flag.Bool("v", false, "print every decision in the grid")
	table2 := flag.Bool("table2", false, "print Table 2 (trade-offs) and exit")
	multi := flag.Bool("multi", false, "demonstrate multi-array joint placement (PageRank array set)")
	live := flag.Bool("live", false, "demonstrate live re-scoring: a drifting workload flips its §6 decision mid-run")
	reencode := flag.Bool("reencode", false, "demonstrate live re-encoding: a drifting access mix migrates an array between codecs mid-run")
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	exitOn(of.Start())

	var rec *obs.Recorder
	if of.Active() {
		rec = obs.NewRecorder(0)
	}
	var reg *obs.ArrayRegistry
	if of.Serve != "" {
		reg = obs.NewArrayRegistry()
		core.SetArrayRegistry(reg)
		addr, _, err := serve.New(rec, reg).Start(of.Serve)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "saadapt: introspection server on http://%s\n", addr)
	}

	switch {
	case *table2:
		bench.PrintTable2(os.Stdout)
	case *multi:
		runMulti(rec)
	case *live:
		rep := bench.RunLiveAdaptivity(bench.LiveConfig{Recorder: rec, Arrays: reg})
		bench.PrintLiveReport(os.Stdout, rep)
	case *reencode:
		rep := bench.RunLiveReencoding(bench.ReencodeConfig{Recorder: rec, Arrays: reg})
		bench.PrintReencodeReport(os.Stdout, rep)
	default:
		rep := bench.RunAdaptivityRecorded(rec)
		bench.PrintAdaptReport(os.Stdout, rep, *verbose)
	}

	if of.MetricsOut != "" {
		f, err := os.Create(of.MetricsOut)
		exitOn(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(rec.Metrics()))
		exitOn(f.Close())
	}
	exitOn(of.Finish(rec))
}

// runMulti jointly places the PageRank arrays (Twitter scale) on the
// 8-core machine at several memory budgets.
func runMulti(rec *obs.Recorder) {
	spec := machine.X52Small()
	usages := []adapt.ArrayUsage{
		{Name: "ranks", PayloadBytes: 336e6, RandomBytes: 62e9, ScanBytes: 0.34e9, ReadOnly: true},
		{Name: "redge", PayloadBytes: 6e9, ScanBytes: 6e9, ReadOnly: true},
		{Name: "rbegin", PayloadBytes: 336e6, ScanBytes: 0.34e9, ReadOnly: true},
		{Name: "out-degrees", PayloadBytes: 336e6, RandomBytes: 3e9, ReadOnly: true},
		{Name: "next-ranks", PayloadBytes: 336e6, WriteBytes: 0.34e9},
	}
	const instr = 50e9
	fmt.Printf("Multi-array placement for PageRank on %s (one iteration)\n", spec.Name)
	for _, budget := range []uint64{128 << 30, 7 << 30, 4 << 30} {
		ds, res := adapt.DecideMultiRecorded(spec, budget, instr, usages, rec)
		fmt.Printf("  memory budget %3d GB/socket -> %.0f ms/iter, bottleneck %s\n",
			budget>>30, res.Seconds*1e3, res.Bottleneck)
		for _, d := range ds {
			fmt.Printf("      %s\n", d)
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "saadapt:", err)
		os.Exit(1)
	}
}
