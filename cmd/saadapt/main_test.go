package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"smartarrays/internal/bench"
	"smartarrays/internal/obs"
)

// TestTraceEmitsOneDecisionPerStep runs the real binary with -trace and
// checks the trace holds exactly one decision event per adaptivity step
// in the evaluation grid, each with a non-empty candidate set and both
// the estimated and realized cost filled in.
func TestTraceEmitsOneDecisionPerStep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the saadapt binary")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "saadapt.trace.jsonl")
	metrics := filepath.Join(dir, "metrics.json")

	cmd := exec.Command("go", "run", ".", "-trace", trace, "-metrics-out", metrics)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("saadapt failed: %v\n%s", err, out)
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace is not valid JSONL: %v", err)
	}

	decisions := 0
	for _, ev := range evs {
		if ev.Kind != obs.KindDecision {
			continue
		}
		decisions++
		d := ev.Decision
		if d == nil {
			t.Fatalf("seq %d: decision event without payload", ev.Seq)
		}
		if d.Name == "" || d.Chosen == "" || len(d.Candidates) == 0 {
			t.Errorf("seq %d: incomplete decision event: %+v", ev.Seq, d)
		}
		if d.RealizedMs <= 0 || d.BestMs <= 0 {
			t.Errorf("seq %d: missing realized/best cost: %+v", ev.Seq, d)
		}
	}

	want := bench.RunAdaptivity().Cases
	if decisions != want {
		t.Fatalf("trace has %d decision events, want one per adaptivity step (%d)",
			decisions, want)
	}

	// The -metrics-out aggregate must agree with the trace.
	mf, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	var m obs.Metrics
	if err := json.NewDecoder(mf).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Decisions != decisions {
		t.Fatalf("metrics report %d decisions, trace has %d", m.Decisions, decisions)
	}
}
