// Command sagen generates synthetic graphs in the edge-list format the
// library loads, and prints their shape statistics (degree skew,
// compression widths):
//
//	sagen -kind powerlaw -vertices 100000 -degree 8 -out twitter-like.el
//	sagen -kind uniform -vertices 1000000 -degree 3 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/graph"
)

func main() {
	kind := flag.String("kind", "powerlaw", "graph kind: uniform, powerlaw, ring, grid")
	vertices := flag.Uint64("vertices", 100_000, "vertex count (grid: side length)")
	degree := flag.Int("degree", 8, "average out-degree (uniform/powerlaw)")
	alpha := flag.Float64("alpha", 1.6, "zipf exponent (powerlaw)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "write the edge list to this file ('-' for stdout)")
	stats := flag.Bool("stats", true, "print graph statistics")
	flag.Parse()

	var g *graph.CSR
	var err error
	switch *kind {
	case "uniform":
		g, err = graph.GenerateUniform(*vertices, *degree, *seed)
	case "powerlaw":
		g, err = graph.GeneratePowerLaw(*vertices, *degree, *alpha, *seed)
	case "ring":
		g, err = graph.GenerateRing(*vertices)
	case "grid":
		g, err = graph.GenerateGrid(*vertices, *vertices)
	default:
		err = fmt.Errorf("unknown kind %q (want uniform, powerlaw, ring, grid)", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagen:", err)
		os.Exit(1)
	}

	if *stats {
		graph.PrintStats(os.Stdout, graph.ComputeStats(g))
		hist := graph.DegreeHistogram(g)
		fmt.Print("in-degree histogram (log2 buckets): ")
		for b, c := range hist {
			if c > 0 {
				fmt.Printf("[2^%d]=%d ", b, c)
			}
		}
		fmt.Println()
	}

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sagen:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g); err != nil {
			fmt.Fprintln(os.Stderr, "sagen:", err)
			os.Exit(1)
		}
		if *out != "-" {
			fmt.Printf("wrote %d edges to %s\n", g.NumEdges, *out)
		}
	}
}
