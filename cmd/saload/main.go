// Command saload drives a saserve instance with a mixed query workload
// and reports queries/sec and latency percentiles (see
// internal/queryd/loadgen).
//
//	saload -addr 127.0.0.1:8080 -duration 5s -concurrency 8
//	saload -addr 127.0.0.1:8080 -duration 10s -rate 200      # open-loop Poisson
//
// -spot-check first verifies served results against the dataset's
// build-time checksums (sum(column) per column, row count, degree sum =
// 2x edges), so a passing run certifies correctness, not just liveness.
//
// Gate flags turn the run into a pass/fail check for CI:
//
//	-max-5xx 0        fail on any 5xx response
//	-min-qps 1        fail if successful throughput is below this
//	-max-p99-ms 5000  fail if client-side p99 exceeds this
//
// Unset gates (negative -max-5xx, zero -min-qps/-max-p99-ms) are skipped.
// The JSON report lands in -report (default saload_report.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smartarrays/internal/queryd/loadgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "server address (host:port)")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "closed-loop clients, or open-loop outstanding cap")
	rate := flag.Float64("rate", 0, "open-loop Poisson arrivals/sec (0 = closed loop)")
	seed := flag.Int64("seed", 1, "workload random seed (same seed replays the same pick sequences)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	report := flag.String("report", "saload_report.json", "write the JSON report here (empty = skip)")
	spot := flag.Bool("spot-check", true, "verify results against dataset checksums before the run")
	aggOnly := flag.Bool("agg-only", false, "restrict the mix to table scans (aggregate/groupby)")
	tenants := flag.Int("tenants", 0, "spread load over N synthetic tenants (tenant-0..tenant-N-1; 0/1 = untagged)")
	setSample := flag.Int("set-profile-sample", -1, "swap the server's profile_sample before the run (-1 = leave unchanged)")

	max5xx := flag.Int("max-5xx", -1, "gate: max allowed 5xx responses (negative = no gate)")
	minQPS := flag.Float64("min-qps", 0, "gate: min successful queries/sec (0 = no gate)")
	maxP99 := flag.Float64("max-p99-ms", 0, "gate: max client-side p99 in ms (0 = no gate)")
	minCacheHits := flag.Uint64("min-cache-hits", 0, "gate: min server-side result-cache hits over the run (0 = no gate)")
	minSharedBatches := flag.Uint64("min-shared-batches", 0, "gate: min server-side shared-scan batches (>=2 queries) over the run (0 = no gate)")
	baselineQPS := flag.Float64("baseline-qps", 0, "reference qps for the profiling-overhead gate")
	maxProfileOverhead := flag.Float64("max-profile-overhead-pct", 0, "gate: max qps degradation vs -baseline-qps in percent (0 = no gate)")
	minSlowlog := flag.Uint64("min-slowlog-entries", 0, "gate: min slow-query-log profiles observed over the run (0 = no gate)")
	minTenantSeries := flag.Int("min-tenant-series", 0, "gate: min per-tenant RED series on the server after the run (0 = no gate)")
	flag.Parse()

	if *setSample >= 0 {
		if err := loadgen.SetProfileSample(*addr, *setSample); err != nil {
			fmt.Fprintln(os.Stderr, "saload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saload: server profile_sample set to %d\n", *setSample)
	}
	if *spot {
		if err := loadgen.SpotCheck(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "saload: spot check FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "saload: spot check passed (column sums, row count, degree sum)")
	}

	rep, err := loadgen.Run(loadgen.Options{
		Addr:        *addr,
		Duration:    *duration,
		Rate:        *rate,
		Concurrency: *concurrency,
		AggOnly:     *aggOnly,
		Tenants:     *tenants,
		Seed:        *seed,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saload:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())
	if *report != "" {
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, "saload: writing report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saload: report written to %s\n", *report)
	}

	failed := false
	gate := func(ok bool, format string, args ...any) {
		if ok {
			return
		}
		failed = true
		fmt.Fprintf(os.Stderr, "saload: gate FAILED: "+format+"\n", args...)
	}
	if *max5xx >= 0 {
		gate(rep.Errors5xx <= uint64(*max5xx), "%d responses were 5xx (max %d)", rep.Errors5xx, *max5xx)
		gate(rep.Transport == 0, "%d requests failed at the transport level", rep.Transport)
	}
	if *minQPS > 0 {
		gate(rep.QPS >= *minQPS, "%.1f qps below floor %.1f", rep.QPS, *minQPS)
	}
	if *maxP99 > 0 {
		gate(rep.P99MS <= *maxP99, "p99 %.2f ms above bound %.2f ms", rep.P99MS, *maxP99)
	}
	if *minCacheHits > 0 {
		gate(rep.CacheHits >= *minCacheHits, "%d cache hits below floor %d", rep.CacheHits, *minCacheHits)
	}
	if *minSharedBatches > 0 {
		gate(rep.SharedBatches >= *minSharedBatches, "%d shared batches below floor %d", rep.SharedBatches, *minSharedBatches)
	}
	if *maxProfileOverhead > 0 && *baselineQPS > 0 {
		overhead := 100 * (1 - rep.QPS / *baselineQPS)
		gate(overhead <= *maxProfileOverhead, "profiling overhead %.1f%% above bound %.1f%% (%.1f qps vs baseline %.1f)",
			overhead, *maxProfileOverhead, rep.QPS, *baselineQPS)
	}
	if *minSlowlog > 0 {
		gate(rep.SlowlogObserved >= *minSlowlog, "%d slowlog profiles below floor %d", rep.SlowlogObserved, *minSlowlog)
	}
	if *minTenantSeries > 0 {
		gate(rep.TenantSeries >= *minTenantSeries, "%d tenant RED series below floor %d", rep.TenantSeries, *minTenantSeries)
	}
	if failed {
		os.Exit(1)
	}
}
