// Command sagate is the CI bench gate: it compares a freshly generated
// bench_report.json against a checked-in baseline and fails (exit 1) when
// any baseline row's ns/op regressed beyond the allowed ratio or went
// missing. The modeled ns/op is deterministic for a given calibration, so
// the gate is reproducible — any drift is a real change to the model, the
// workload descriptors, or the harness.
//
//	sagate -baseline bench_baseline.json -current bench_report.json
//
// Intentional performance changes are landed by either regenerating the
// baseline in the same PR or setting BENCH_GATE_OVERRIDE=1 (CI sets it
// when the PR carries the "perf-intentional" label), which reports the
// regressions but exits 0.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/obs"
)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline report")
	currentPath := flag.String("current", "bench_report.json", "freshly generated report")
	maxRegress := flag.Float64("max-regress-pct", 25, "allowed ns/op regression in percent")
	flag.Parse()

	baseline, err := obs.ReadBenchReportFile(*baselinePath)
	exitOn(err)
	current, err := obs.ReadBenchReportFile(*currentPath)
	exitOn(err)

	maxRatio := 1 + *maxRegress/100
	regressions := obs.Compare(baseline, current, maxRatio)
	if len(regressions) == 0 {
		fmt.Printf("sagate: OK — %d baseline rows within %.0f%% of baseline ns/op\n",
			len(baseline.Rows), *maxRegress)
		return
	}

	fmt.Fprintf(os.Stderr, "sagate: %d regression(s) beyond %.0f%% against %s:\n",
		len(regressions), *maxRegress, *baselinePath)
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	if os.Getenv("BENCH_GATE_OVERRIDE") != "" {
		fmt.Fprintln(os.Stderr, "sagate: BENCH_GATE_OVERRIDE set — reporting only, not failing")
		return
	}
	fmt.Fprintln(os.Stderr, "sagate: regenerate bench_baseline.json if intentional, or set BENCH_GATE_OVERRIDE=1")
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagate:", err)
		os.Exit(1)
	}
}
