// Command saablate runs the ablation studies of the reproduction's design
// choices (DESIGN.md §5): the remote-stall factor, the power-law locality
// boost, the runtime's batch grain, the chunk-unpack scan strategy, and
// the §7 randomization functionality.
package main

import (
	"os"

	"smartarrays/internal/bench"
)

func main() {
	bench.PrintAblations(os.Stdout, bench.RunAblations())
	bench.PrintCrossovers(os.Stdout, bench.RunCrossovers())
}
