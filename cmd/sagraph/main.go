// Command sagraph regenerates the paper's graph analytics experiments:
//
//	sagraph -fig 1    Figure 1 — PageRank original vs replicated (8-core)
//	sagraph -fig 11   Figure 11 — degree centrality series, both machines
//	sagraph -fig 12   Figure 12 — PageRank series, both machines
//
// Real runs execute on a -vertices synthetic graph (uniform degree-3 for
// degree centrality, Twitter-like power law for PageRank) and are verified
// against plain references; the model evaluates the paper-scale datasets
// (1.5G vertices / 42M-vertex 1.5G-edge Twitter).
//
// Observability: -metrics-out writes the machine-readable
// bench_report.json, -trace the structured event log (RTS loop
// statistics) as JSONL, -serve exposes the live introspection endpoints
// (/metrics /arrays /trace /decisions) with per-array telemetry enabled,
// and -pprof/-cpuprofile/-memprofile profile the harness itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/bench"
	"smartarrays/internal/core"
	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/obs/serve"
)

func main() {
	fig := flag.Int("fig", 12, "figure to regenerate: 1, 11, or 12")
	vertices := flag.Uint64("vertices", 20000, "vertices for the real (verified) run")
	verify := flag.Bool("verify", true, "verify real runs against plain references")
	steal := flag.Bool("steal", true, "enable cross-socket work stealing in the real runs")
	csvPath := flag.String("csv", "", "also write the rows as CSV to this file")
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	exitOn(of.Start())

	var rec *obs.Recorder
	if of.Active() {
		rec = obs.NewRecorder(0)
	}
	var reg *obs.ArrayRegistry
	if of.Serve != "" {
		reg = obs.NewArrayRegistry()
		core.SetArrayRegistry(reg)
		addr, _, err := serve.New(rec, reg).Start(of.Serve)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "sagraph: introspection server on http://%s\n", addr)
	}
	opts := bench.Options{Elements: 1 << 18, GraphVertices: *vertices, Verify: *verify, Recorder: rec, Steal: *steal, Arrays: reg}
	tool := fmt.Sprintf("sagraph -fig %d", *fig)

	var report *obs.BenchReport
	switch *fig {
	case 1:
		orig, repl, err := bench.RunFigure1(opts)
		exitOn(err)
		fmt.Println("Figure 1: PageRank on the 8-core machine (paper: >2x time and bandwidth)")
		fmt.Printf("  original               %7.0f ms   %5.1f GB/s\n", orig.TimeMs, orig.BandwidthGBs)
		fmt.Printf("  smart arrays w/ repl.  %7.0f ms   %5.1f GB/s\n", repl.TimeMs, repl.BandwidthGBs)
		fmt.Printf("  speedup %.2fx, bandwidth ratio %.2fx\n",
			orig.TimeMs/repl.TimeMs, repl.BandwidthGBs/orig.BandwidthGBs)
		report = bench.GraphBenchReport(tool, "pagerank", []bench.GraphResult{orig, repl})
	case 11:
		rows, err := bench.RunFigure11(opts)
		exitOn(err)
		bench.PrintGraphTable(os.Stdout,
			fmt.Sprintf("Figure 11: degree centrality (modeled at %d vertices, degree %d)",
				uint64(bench.PaperDegreeVertices), bench.PaperDegreeDegree), rows)
		exitOn(writeCSV(*csvPath, rows))
		report = bench.GraphBenchReport(tool, "degree-centrality", rows)
	case 12:
		rows, err := bench.RunFigure12(opts)
		exitOn(err)
		bench.PrintGraphTable(os.Stdout,
			fmt.Sprintf("Figure 12: PageRank (modeled at the Twitter graph: %dM vertices, %dM edges, %d iterations)",
				bench.PaperTwitterVertices/1_000_000, bench.PaperTwitterEdges/1_000_000, bench.PaperPageRankIters), rows)
		printMemorySavings(rows)
		exitOn(writeCSV(*csvPath, rows))
		report = bench.GraphBenchReport(tool, "pagerank", rows)
	default:
		fmt.Fprintf(os.Stderr, "sagraph: unknown figure %d (want 1, 11, or 12)\n", *fig)
		os.Exit(2)
	}

	if of.MetricsOut != "" {
		printStealStats(rec)
		if rec != nil {
			m := rec.Metrics()
			report.Metrics = &m
		}
		exitOn(report.WriteFile(of.MetricsOut))
	}
	exitOn(of.Finish(rec))
}

// printStealStats summarizes the run's work-stealing behaviour from the
// recorded loop statistics: per-loop steal counts (for loops that stole)
// and the claim imbalance ratio (max/mean per-worker claims) the stealing
// path is meant to pull toward 1.
func printStealStats(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	var loops, stealing int
	var steals uint64
	var worstRatio float64
	for _, ev := range rec.Events() {
		if ev.Kind != obs.KindLoop || ev.Loop == nil {
			continue
		}
		ls := ev.Loop
		loops++
		if ls.MaxMeanClaimRatio > worstRatio {
			worstRatio = ls.MaxMeanClaimRatio
		}
		if ls.Steals == 0 {
			continue
		}
		stealing++
		steals += ls.Steals
		fmt.Printf("  loop [%d,%d) grain %d: %d/%d batches stolen, imbalance ratio %.2f\n",
			ls.Begin, ls.End, ls.Grain, ls.Steals, ls.Batches, ls.MaxMeanClaimRatio)
	}
	fmt.Printf("work stealing: %d loops recorded, %d with steals, %d batches stolen, worst imbalance ratio %.2f\n",
		loops, stealing, steals, worstRatio)
}

func printMemorySavings(rows []bench.GraphResult) {
	var u, ve uint64
	for _, r := range rows {
		if r.Machine == machine.X52Small().Name && r.Label == "replicated" {
			switch r.Compression {
			case "U":
				u = r.MemoryBytes
			case "V+E":
				ve = r.MemoryBytes
			}
		}
	}
	if u > 0 && ve > 0 {
		fmt.Printf("memory space: U %.1f GB vs V+E %.1f GB — %.1f%% saved (paper: ~21%%)\n",
			float64(u)/machine.GB, float64(ve)/machine.GB, 100*(1-float64(ve)/float64(u)))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sagraph:", err)
		os.Exit(1)
	}
}

func writeCSV(path string, rows []bench.GraphResult) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteGraphCSV(f, rows)
}
