// Command sastream runs the STREAM kernel quartet (Copy, Scale, Add,
// Triad — McCalpin's benchmark, which the paper cites as the motivation
// for its aggregation workload, §5.1) over smart arrays, reporting
// modeled sustainable bandwidth per placement on both Table 1 machines.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/bench"
)

func main() {
	elements := flag.Uint64("elements", 1<<18, "elements per array for the real (verified) run")
	flag.Parse()
	rows, err := bench.RunStream(bench.Options{Elements: *elements, Verify: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sastream:", err)
		os.Exit(1)
	}
	bench.PrintStreamTable(os.Stdout, rows)
}
