// Command satopo prints the modeled machines (paper Table 1) and their
// derived performance characteristics: topology, bandwidths, and the
// calibrated model parameters every experiment uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"smartarrays/internal/bench"
	"smartarrays/internal/machine"
)

func main() {
	name := flag.String("machine", "", "print one preset (small, large, uma, callisto) instead of Table 1")
	flag.Parse()

	if *name != "" {
		spec, err := machine.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printSpec(spec)
		return
	}

	bench.PrintTable1(os.Stdout)
	fmt.Println()
	fmt.Println("Calibrated model parameters (fixed against Figure 2, see DESIGN.md §5):")
	for _, spec := range bench.Machines() {
		fmt.Printf("  %s: IPC_eff=%.1f remote-stall=%.2f exec-rate=%.1f Ginstr/s/socket\n",
			spec.Name, spec.IPCEff, spec.RemoteStallFactor, spec.ExecRate()/1e9)
	}
}

func printSpec(s *machine.Spec) {
	fmt.Println(s)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sockets\t%d\n", s.Sockets)
	fmt.Fprintf(tw, "cores/socket\t%d\n", s.CoresPerSocket)
	fmt.Fprintf(tw, "threads/core\t%d\n", s.ThreadsPerCore)
	fmt.Fprintf(tw, "hw threads\t%d\n", s.HWThreads())
	fmt.Fprintf(tw, "clock\t%.1f GHz\n", s.ClockGHz)
	fmt.Fprintf(tw, "memory/socket\t%d GB\n", s.MemPerSocketGB)
	fmt.Fprintf(tw, "local latency\t%.0f ns\n", s.LocalLatencyNs)
	fmt.Fprintf(tw, "remote latency\t%.0f ns\n", s.RemoteLatencyNs)
	fmt.Fprintf(tw, "local bandwidth\t%.1f GB/s\n", s.LocalBWGBs)
	fmt.Fprintf(tw, "remote bandwidth\t%.1f GB/s\n", s.RemoteBWGBs)
	fmt.Fprintf(tw, "total local bandwidth\t%.1f GB/s\n", s.TotalLocalBWGBs())
	fmt.Fprintf(tw, "LLC/socket\t%.0f MB\n", s.LLCMB)
	fmt.Fprintf(tw, "exec rate/socket\t%.1f Ginstr/s\n", s.ExecRate()/1e9)
	tw.Flush()
}
