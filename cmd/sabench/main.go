// Command sabench regenerates the paper's aggregation experiments:
//
//	sabench -fig 2    Figure 2 — the four regimes on the 18-core machine
//	sabench -fig 3    Figure 3 — the five interop paths (measured)
//	sabench -fig 10   Figure 10 — the full bits x placement x language sweep
//
// Each run really executes the workload at -elements per array on the
// simulated machine (verifying the sums) and models the paper-scale (4 GB
// per array) run with the calibrated performance model.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/bench"
)

func main() {
	fig := flag.Int("fig", 2, "figure to regenerate: 2, 3, or 10")
	elements := flag.Uint64("elements", 1<<20, "elements per array for the real run")
	verify := flag.Bool("verify", true, "verify real runs against plain references")
	csvPath := flag.String("csv", "", "also write the rows as CSV to this file")
	flag.Parse()

	opts := bench.Options{Elements: *elements, GraphVertices: 1000, Verify: *verify}
	switch *fig {
	case 2:
		rows, err := bench.RunFigure2(opts)
		exitOn(err)
		bench.PrintAggTable(os.Stdout,
			"Figure 2: parallel aggregation, 18-core machine (paper: 201/43 -> 122/71 -> 109/80 -> 62/73)", rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteAggCSV(f, rows) }))
	case 3:
		rows, err := bench.RunFigure3(opts)
		exitOn(err)
		bench.PrintInteropTable(os.Stdout, rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteInteropCSV(f, rows) }))
	case 10:
		rows, err := bench.RunFigure10(opts)
		exitOn(err)
		bench.PrintAggTable(os.Stdout, "Figure 10: aggregation sweep (bits x placement x language x machine)", rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteAggCSV(f, rows) }))
	default:
		fmt.Fprintf(os.Stderr, "sabench: unknown figure %d (want 2, 3, or 10)\n", *fig)
		os.Exit(2)
	}
}

func writeCSV(path string, fn func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sabench:", err)
		os.Exit(1)
	}
}
