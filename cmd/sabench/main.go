// Command sabench regenerates the paper's aggregation experiments:
//
//	sabench -fig 2    Figure 2 — the four regimes on the 18-core machine
//	sabench -fig 3    Figure 3 — the five interop paths (measured)
//	sabench -fig 10   Figure 10 — the full bits x placement x language sweep
//
// Each run really executes the workload at -elements per array on the
// simulated machine (verifying the sums) and models the paper-scale (4 GB
// per array) run with the calibrated performance model.
//
// Observability: -metrics-out writes the machine-readable
// bench_report.json (the CI bench gate's input), -trace writes the
// structured event log (RTS loop statistics, counter snapshots) as JSONL,
// -serve exposes the live introspection endpoints (/metrics /arrays
// /trace /decisions) with per-array telemetry enabled while the run
// executes, and -pprof/-cpuprofile/-memprofile profile the harness
// itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartarrays/internal/bench"
	"smartarrays/internal/core"
	"smartarrays/internal/obs"
	"smartarrays/internal/obs/serve"
)

func main() {
	fig := flag.Int("fig", 2, "figure to regenerate: 2, 3, or 10")
	elements := flag.Uint64("elements", 1<<20, "elements per array for the real run")
	verify := flag.Bool("verify", true, "verify real runs against plain references")
	kernels := flag.Bool("kernels", false, "also run the fused packed-scan and codec kernel benchmarks and append their rows to the report")
	codecs := flag.Bool("codecs", false, "also print the measured codec fold timings (clustered vs uniform, wall-clock; never gated)")
	steal := flag.Bool("steal", false, "enable cross-socket work stealing in the real runs")
	csvPath := flag.String("csv", "", "also write the rows as CSV to this file")
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()
	exitOn(of.Start())

	var rec *obs.Recorder
	if of.Active() {
		rec = obs.NewRecorder(0)
	}
	var reg *obs.ArrayRegistry
	if of.Serve != "" {
		reg = obs.NewArrayRegistry()
		core.SetArrayRegistry(reg)
		addr, _, err := serve.New(rec, reg).Start(of.Serve)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "sabench: introspection server on http://%s\n", addr)
	}
	opts := bench.Options{Elements: *elements, GraphVertices: 1000, Verify: *verify, Recorder: rec, Steal: *steal, Arrays: reg}
	tool := fmt.Sprintf("sabench -fig %d", *fig)

	var report *obs.BenchReport
	switch *fig {
	case 2:
		rows, err := bench.RunFigure2(opts)
		exitOn(err)
		bench.PrintAggTable(os.Stdout,
			"Figure 2: parallel aggregation, 18-core machine (paper: 201/43 -> 122/71 -> 109/80 -> 62/73)", rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteAggCSV(f, rows) }))
		report = bench.AggBenchReport(tool, rows)
	case 3:
		rows, err := bench.RunFigure3(opts)
		exitOn(err)
		bench.PrintInteropTable(os.Stdout, rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteInteropCSV(f, rows) }))
		report = bench.InteropBenchReport(tool, rows)
	case 10:
		rows, err := bench.RunFigure10(opts)
		exitOn(err)
		bench.PrintAggTable(os.Stdout, "Figure 10: aggregation sweep (bits x placement x language x machine)", rows)
		exitOn(writeCSV(*csvPath, func(f *os.File) error { return bench.WriteAggCSV(f, rows) }))
		report = bench.AggBenchReport(tool, rows)
	default:
		fmt.Fprintf(os.Stderr, "sabench: unknown figure %d (want 2, 3, or 10)\n", *fig)
		os.Exit(2)
	}

	if *kernels {
		rows, err := bench.RunFusedKernels(opts)
		exitOn(err)
		telRow, err := bench.RunKernelTelemetryRow(opts)
		exitOn(err)
		rows = append(rows, telRow)
		codecRows, err := bench.RunCodecKernels(opts)
		exitOn(err)
		rows = append(rows, codecRows...)
		pruneRows, err := bench.RunPruningKernels(opts)
		exitOn(err)
		rows = append(rows, pruneRows...)
		sharedRows, err := bench.RunSharedScanKernels(opts)
		exitOn(err)
		rows = append(rows, sharedRows...)
		bench.PrintKernelTable(os.Stdout, rows)
		if report != nil {
			krep := bench.KernelBenchReport(tool, rows)
			for _, m := range krep.Machines {
				report.AddMachine(m)
			}
			report.Rows = append(report.Rows, krep.Rows...)
		}
	}

	if *codecs {
		bench.PrintCodecScanTable(os.Stdout, bench.MeasureCodecScans(0, 0))
		bench.PrintPrunedScanTable(os.Stdout, bench.MeasurePrunedScans(0, 0))
	}

	if of.MetricsOut != "" {
		if rec != nil {
			m := rec.Metrics()
			report.Metrics = &m
		}
		exitOn(report.WriteFile(of.MetricsOut))
	}
	exitOn(of.Finish(rec))
}

func writeCSV(path string, fn func(*os.File) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sabench:", err)
		os.Exit(1)
	}
}
