// Command saserve runs the query-service data plane: an HTTP+JSON front
// end serving colstore aggregations and graph kernels concurrently over
// one smart-array runtime (see internal/queryd).
//
//	saserve -addr 127.0.0.1:8080 -machine small -rows 1000000 -vertices 20000
//
// The server builds one deterministic synthetic dataset at startup
// (columns id/region/amount/flag plus a power-law graph); more can be
// added at runtime through POST /control/config. Admission knobs
// (-max-inflight, -max-queue, -queue-timeout-ms, -tenant-quota) set the
// initial config, also swappable at runtime. The obs introspection
// endpoints (/metrics /arrays /trace /decisions) are mounted on the same
// listener.
//
// -addr-file writes the bound address (useful with -addr :0 in scripts:
// the load harness polls the file instead of guessing the port).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"smartarrays/internal/core"
	"smartarrays/internal/machine"
	"smartarrays/internal/obs"
	"smartarrays/internal/queryd"
	"smartarrays/internal/rts"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	machineName := flag.String("machine", "small", "machine preset: small, large, uma, callisto")

	dataset := flag.String("dataset", "demo", "name of the startup dataset")
	rows := flag.Uint64("rows", 1<<20, "table rows in the startup dataset (0 = no table)")
	vertices := flag.Uint64("vertices", 20000, "graph vertices in the startup dataset (0 = no graph)")
	degree := flag.Int("degree", 8, "average out-degree of the startup graph")
	seed := flag.Uint64("seed", 1, "seed for the synthetic data generator")

	cfg := queryd.DefaultConfig()
	flag.IntVar(&cfg.MaxInFlight, "max-inflight", cfg.MaxInFlight, "concurrently executing queries")
	flag.IntVar(&cfg.MaxQueue, "max-queue", cfg.MaxQueue, "queued queries before shedding")
	flag.Int64Var(&cfg.QueueTimeoutMS, "queue-timeout-ms", cfg.QueueTimeoutMS, "default queue deadline")
	flag.IntVar(&cfg.TenantMaxInFlight, "tenant-quota", cfg.TenantMaxInFlight, "per-tenant in-flight cap (0 = unlimited)")
	// Serving defaults to a bounded result cache and cooperative shared
	// scans; the library defaults keep both off so embedded/test servers
	// opt in explicitly.
	flag.IntVar(&cfg.CacheEntries, "cache", 1024, "result cache entries (0 = caching off)")
	flag.BoolVar(&cfg.SharedScan, "shared", true, "coalesce concurrent aggregates into cooperative shared scans")
	flag.IntVar(&cfg.SharedScanSegments, "shared-segments", 0, "shared-scan circular segments (0 = default)")
	// Serving defaults to light profile sampling: 1-in-16 keeps the
	// slow-query log and /debug/query lookups populated at negligible
	// cost; "explain": true always profiles regardless.
	flag.IntVar(&cfg.ProfileSample, "profile-sample", 16, "profile 1-in-N queries (0 = off, 1 = every query)")
	flag.Int64Var(&cfg.SlowQueryMS, "slow-query-ms", 0, "slow-query-log threshold in ms (0 = default 250)")
	flag.Parse()

	spec, err := machine.ByName(*machineName)
	exitOn(err)

	rec := obs.NewRecorder(0)
	reg := obs.NewArrayRegistry()
	core.SetArrayRegistry(reg)

	rt := rts.New(spec)
	rt.SetRecorder(rec)
	rt.SetArrayProfiling(reg)

	specs := []queryd.DatasetSpec{{
		Name: *dataset, Rows: *rows, Vertices: *vertices, Degree: *degree, Seed: *seed,
	}}
	srv, err := queryd.NewServer(rt, cfg, specs, rec, reg)
	exitOn(err)

	bound, stop, err := srv.Start(*addr)
	exitOn(err)
	if *addrFile != "" {
		exitOn(os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644))
	}
	fmt.Fprintf(os.Stderr, "saserve: %s on http://%s (%s; %d rows, %d vertices)\n",
		*dataset, bound, spec.Name, *rows, *vertices)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "saserve: shutting down")
	_ = stop()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "saserve:", err)
		os.Exit(1)
	}
}
